//! A minimal hand-rolled JSON value, parser and string escaper.
//!
//! The workspace carries no serialization dependency, so every JSON
//! producer hand-writes its output (`Counters::to_json`, the Chrome
//! trace exporter, the perf harness) and every consumer parses with this
//! module. The value model is deliberately small: numbers keep their
//! source text so integer consumers ([`Json::as_u64`]) never round-trip
//! through `f64`, and objects preserve field order so a parsed document
//! re-renders byte-identically enough for digest comparisons.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text (see [`Json::as_u64`] /
    /// [`Json::as_f64`]).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of object field `key`, if this is an object holding it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is an unsigned integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(text) => out.push_str(text),
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (k, v) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, v)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, key);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` to `out` with JSON string escaping (`"`, `\`, control
/// characters).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// A description of the first malformed construct, with its byte offset.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("JSON: {what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'0'..=b'9' | b'-' => self.number(),
            c => Err(self.err(&format!("unexpected `{}`", c as char))),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.pos < p.bytes.len() && p.bytes[p.pos].is_ascii_digit() {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("bad number"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("bad number fraction"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("bad number exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Decode one multi-byte UTF-8 character from a bounded
                    // window (validating the whole tail here would make
                    // parsing quadratic).
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..self.bytes.len().min(start + 4)];
                    let valid = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated prefix")
                        }
                        Err(_) => return Err(self.err("bad utf-8")),
                    };
                    let ch = valid.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_precision_survives() {
        // A value above 2^53 would be destroyed by an f64 round-trip;
        // keeping the source text preserves it exactly.
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn objects_preserve_order_and_render_round_trips() {
        let doc = r#"{"b":1,"a":[true,null,"xy"],"c":{"n":2.5}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(v.render(), doc);
    }

    #[test]
    fn rejects_garbage_and_trailers() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("weird \"s\" \\ tab\t μ 半".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
