//! # hpa-obs — cycle-accounting observability
//!
//! A dependency-free instrumentation layer for the Half-Price
//! Architecture simulator: CPI stacks that attribute every issue slot of
//! every cycle to exactly one cause, a counter/histogram registry with a
//! zero-overhead disabled path, and a Chrome trace-event exporter for
//! per-instruction lifetime spans.
//!
//! The crate deliberately knows nothing about the simulator: the pipeline
//! (`hpa-sim`) records into [`Counters`], the runner (`hpa-core`)
//! aggregates them, and the accounting invariant — the books must balance,
//! `cpi.total() == cycles × width` — is enforced by the property suite.
//!
//! Two generic utilities live here because every layer shares them: the
//! hand-rolled [`json`] value/parser (the workspace carries no
//! serialization dependency) and the [`digest`] machinery (FNV-1a over
//! bytes or debug formatting) behind the golden-stats tests and the
//! serve-layer result cache. [`ServeCounters`] is the daemon-side
//! registry (cache hits/misses, queue depth, job latency).
//!
//! See `DESIGN.md` §8 for the category taxonomy and its invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod cpi;
pub mod digest;
pub mod json;
mod registry;

pub use chrome::InstSpan;
pub use cpi::{CpiCategory, CpiStack};
pub use registry::{Counters, Histogram, ServeCounters};
