//! CPI stacks: per-issue-slot cycle attribution.
//!
//! Every cycle, every issue slot of the machine does exactly one thing:
//! it either issues an instruction or it is idle for exactly one reason.
//! The [`CpiStack`] records that attribution so aggregate IPC can be
//! decomposed into the paper's degradation sources (Figures 10–14): the
//! half-price penalties become first-class measurable quantities instead
//! of an end-to-end IPC delta.

use std::fmt;

/// Why an issue slot spent a cycle the way it did.
///
/// The categories form a strict priority cascade (documented per variant);
/// a slot is attributed to the *first* matching cause, so the counts are
/// disjoint and sum to `cycles × width`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CpiCategory {
    /// The slot issued an instruction this cycle (useful work).
    Committing,
    /// The whole machine is inside a post-squash scheduler restart window
    /// (non-selective pullback): no slot may issue.
    Squash,
    /// The slot's select logic disabled itself for one cycle while a
    /// sequential register access reads its single port twice
    /// (paper Figure 11b). Zero under `Scheme::Base`.
    RfRereadStall,
    /// A selectable instruction was deferred by read-port arbitration
    /// (shared crossbar) or by the single-bypass-input constraint. Zero
    /// under `Scheme::Base`.
    PortConflict,
    /// A selectable instruction lost functional-unit arbitration
    /// (structural hazard; present in the base machine too).
    FuContention,
    /// An otherwise-ready instruction is held because its last operand
    /// woke on the slow bus *simultaneously* with the fast side — the
    /// unavoidable +1 of sequential wakeup (paper §3.3). Zero under
    /// `Scheme::Base`.
    SeqWakeupDelay,
    /// An otherwise-ready instruction is held because the last-arriving
    /// operand landed on the slow side (predictor miss or static-policy
    /// miss): the mispredict flavour of the sequential-wakeup +1. Zero
    /// under `Scheme::Base`.
    LaMispredictDelay,
    /// Nothing selectable and an in-flight load is overdue (missed the
    /// speculative latency or is blocked on an older store): the window
    /// is waiting on memory.
    DcacheMissWait,
    /// The window is completely empty: the front end could not supply
    /// instructions (fetch stall, IL1 miss, branch-redirect refill).
    FetchStarved,
    /// Instructions are in flight but none is selectable this cycle
    /// (dependence chains still executing).
    SchedulerEmpty,
}

impl CpiCategory {
    /// Every category, in cascade/display order.
    pub const ALL: [CpiCategory; 10] = [
        CpiCategory::Committing,
        CpiCategory::Squash,
        CpiCategory::RfRereadStall,
        CpiCategory::PortConflict,
        CpiCategory::FuContention,
        CpiCategory::SeqWakeupDelay,
        CpiCategory::LaMispredictDelay,
        CpiCategory::DcacheMissWait,
        CpiCategory::FetchStarved,
        CpiCategory::SchedulerEmpty,
    ];

    /// Stable index into [`CpiStack`] storage.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (JSON keys, table headers).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            CpiCategory::Committing => "issue",
            CpiCategory::Squash => "squash",
            CpiCategory::RfRereadStall => "rf_reread",
            CpiCategory::PortConflict => "port_conflict",
            CpiCategory::FuContention => "fu_contention",
            CpiCategory::SeqWakeupDelay => "seq_wakeup",
            CpiCategory::LaMispredictDelay => "la_mispredict",
            CpiCategory::DcacheMissWait => "dcache_wait",
            CpiCategory::FetchStarved => "fetch_starved",
            CpiCategory::SchedulerEmpty => "sched_empty",
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CpiCategory::Committing => "issued",
            CpiCategory::Squash => "squash restart",
            CpiCategory::RfRereadStall => "RF re-read stall",
            CpiCategory::PortConflict => "port conflict",
            CpiCategory::FuContention => "FU contention",
            CpiCategory::SeqWakeupDelay => "seq-wakeup delay",
            CpiCategory::LaMispredictDelay => "last-arrival mispredict",
            CpiCategory::DcacheMissWait => "dcache-miss wait",
            CpiCategory::FetchStarved => "fetch starved",
            CpiCategory::SchedulerEmpty => "scheduler empty",
        }
    }

    /// Whether the category is a half-price overhead: structurally zero
    /// on the conventional base machine (`Scheme::Base`).
    #[must_use]
    pub fn is_half_price_penalty(self) -> bool {
        matches!(
            self,
            CpiCategory::RfRereadStall
                | CpiCategory::PortConflict
                | CpiCategory::SeqWakeupDelay
                | CpiCategory::LaMispredictDelay
        )
    }
}

impl fmt::Display for CpiCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Issue-slot counts per [`CpiCategory`].
///
/// Invariant (enforced by the property suite): after a run with counters
/// enabled, `total() == stats.cycles * width` — every slot of every
/// counted cycle is attributed exactly once.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CpiStack {
    slots: [u64; CpiCategory::ALL.len()],
}

impl CpiStack {
    /// Adds `n` issue slots to `cat`.
    pub fn add(&mut self, cat: CpiCategory, n: u64) {
        self.slots[cat.index()] += n;
    }

    /// The slot count attributed to `cat`.
    #[must_use]
    pub fn get(&self, cat: CpiCategory) -> u64 {
        self.slots[cat.index()]
    }

    /// Total attributed slots across all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Slots attributed to half-price penalty categories.
    #[must_use]
    pub fn penalty_slots(&self) -> u64 {
        CpiCategory::ALL.iter().filter(|c| c.is_half_price_penalty()).map(|&c| self.get(c)).sum()
    }

    /// `cat` as a fraction of all attributed slots (`0.0` when empty).
    #[must_use]
    pub fn fraction(&self, cat: CpiCategory) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(cat) as f64 / total as f64
        }
    }

    /// Zeroes every category in place.
    pub fn reset_in_place(&mut self) {
        self.slots = [0; CpiCategory::ALL.len()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (k, cat) in CpiCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), k);
        }
    }

    #[test]
    fn stack_sums_and_fractions() {
        let mut s = CpiStack::default();
        s.add(CpiCategory::Committing, 6);
        s.add(CpiCategory::SeqWakeupDelay, 2);
        assert_eq!(s.total(), 8);
        assert_eq!(s.get(CpiCategory::Committing), 6);
        assert_eq!(s.penalty_slots(), 2);
        assert!((s.fraction(CpiCategory::SeqWakeupDelay) - 0.25).abs() < 1e-12);
        s.reset_in_place();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn penalty_categories_are_the_half_price_ones() {
        let penalties: Vec<_> =
            CpiCategory::ALL.iter().filter(|c| c.is_half_price_penalty()).collect();
        assert_eq!(penalties.len(), 4);
        assert!(!CpiCategory::FuContention.is_half_price_penalty());
        assert!(!CpiCategory::Squash.is_half_price_penalty());
    }

    #[test]
    fn keys_and_labels_are_unique() {
        let mut keys: Vec<_> = CpiCategory::ALL.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), CpiCategory::ALL.len());
    }
}
