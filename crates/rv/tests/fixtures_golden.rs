//! Pins the checked-in fixture ELFs to their in-repo generator and runs
//! every fixture end-to-end through the reference emulator against its
//! host-side Rust model.

use hpa_emu::{Emulator, RunOutcome};
use hpa_isa::Reg;
use hpa_rv::{fixtures, load_elf, translate};
use std::path::PathBuf;

/// `a1` (guest checksum register) maps to internal `r10`.
const CHECKSUM_REG: Reg = Reg::R10;

/// The checked-in binaries must be exactly what the generator produces
/// today. Regenerate with `REGEN_FIXTURES=1 cargo test -p hpa-rv`.
#[test]
fn checked_in_fixtures_match_generator() {
    let regen = std::env::var_os("REGEN_FIXTURES").is_some();
    for f in fixtures::all() {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(f.file);
        if regen {
            std::fs::write(&path, &f.elf).expect("write fixture");
            continue; // include_bytes can only match on the next build
        }
        let checked_in = std::fs::read(&path).expect("read checked-in fixture");
        assert_eq!(
            checked_in, f.elf,
            "fixture `{}` is stale; rerun with REGEN_FIXTURES=1 cargo test -p hpa-rv",
            f.name
        );
        assert_eq!(f.checked_in, f.elf, "include_bytes out of date for `{}`", f.name);
    }
}

/// Every fixture loads, translates, runs to a clean halt inside budget,
/// and leaves the host model's checksum in `a1`.
#[test]
fn fixtures_run_end_to_end_in_the_emulator() {
    for f in fixtures::all() {
        let image = load_elf(&f.elf).expect("fixture ELF loads");
        let program = translate(&image).expect("fixture translates");
        let mut emu = Emulator::new(&program);
        match emu.run(f.budget).expect("fixture runs without faulting") {
            RunOutcome::Halted { executed } => {
                assert!(executed > 0);
                assert_eq!(
                    emu.reg(CHECKSUM_REG),
                    f.expected_checksum,
                    "fixture `{}` checksum diverged from host model",
                    f.name
                );
            }
            other => panic!("fixture `{}` did not halt: {other:?}", f.name),
        }
    }
}

/// The shim's exit convention: `a0` at exit is the guest's exit code.
#[test]
fn fixtures_exit_zero() {
    for f in fixtures::all() {
        let image = load_elf(&f.elf).expect("fixture ELF loads");
        let program = translate(&image).expect("fixture translates");
        let mut emu = Emulator::new(&program);
        emu.run(f.budget).expect("fixture runs");
        assert_eq!(emu.reg(hpa_rv::xreg(10)), 0, "fixture `{}` exit code", f.name);
    }
}
