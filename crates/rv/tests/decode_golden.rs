//! Decoder golden test: every supported RV64I(+M) instruction round-trips
//! through `decode`/`encode` against a checked-in encoding table.
//!
//! The table was written out by hand from the RISC-V unprivileged spec
//! (field-by-field), so it cross-checks the decoder against the ISA
//! document rather than against itself. Immediates are pinned at their
//! sign-extension edges (`-1`, `-2048`, `2047`, `-4096`, full jal range)
//! where the encoding forms allow.

use hpa_rv::{decode, encode, RvBranch, RvInst, RvOp, RvWidth};

/// `(word, instruction)` — `decode(word)` must yield the instruction and
/// `encode(instruction)` must yield the word.
#[rustfmt::skip]
const GOLDEN: &[(u32, RvInst)] = &[
    // --- OP (R-type): rd = x1, rs1 = x2, rs2 = x3 ---
    (0x003100B3, RvInst::Op { op: RvOp::Add,    rd: 1, rs1: 2, rs2: 3 }),
    (0x403100B3, RvInst::Op { op: RvOp::Sub,    rd: 1, rs1: 2, rs2: 3 }),
    (0x003110B3, RvInst::Op { op: RvOp::Sll,    rd: 1, rs1: 2, rs2: 3 }),
    (0x003120B3, RvInst::Op { op: RvOp::Slt,    rd: 1, rs1: 2, rs2: 3 }),
    (0x003130B3, RvInst::Op { op: RvOp::Sltu,   rd: 1, rs1: 2, rs2: 3 }),
    (0x003140B3, RvInst::Op { op: RvOp::Xor,    rd: 1, rs1: 2, rs2: 3 }),
    (0x003150B3, RvInst::Op { op: RvOp::Srl,    rd: 1, rs1: 2, rs2: 3 }),
    (0x403150B3, RvInst::Op { op: RvOp::Sra,    rd: 1, rs1: 2, rs2: 3 }),
    (0x003160B3, RvInst::Op { op: RvOp::Or,     rd: 1, rs1: 2, rs2: 3 }),
    (0x003170B3, RvInst::Op { op: RvOp::And,    rd: 1, rs1: 2, rs2: 3 }),
    // --- OP, M extension ---
    (0x023100B3, RvInst::Op { op: RvOp::Mul,    rd: 1, rs1: 2, rs2: 3 }),
    (0x023110B3, RvInst::Op { op: RvOp::Mulh,   rd: 1, rs1: 2, rs2: 3 }),
    (0x023120B3, RvInst::Op { op: RvOp::Mulhsu, rd: 1, rs1: 2, rs2: 3 }),
    (0x023130B3, RvInst::Op { op: RvOp::Mulhu,  rd: 1, rs1: 2, rs2: 3 }),
    (0x023140B3, RvInst::Op { op: RvOp::Div,    rd: 1, rs1: 2, rs2: 3 }),
    (0x023150B3, RvInst::Op { op: RvOp::Divu,   rd: 1, rs1: 2, rs2: 3 }),
    (0x023160B3, RvInst::Op { op: RvOp::Rem,    rd: 1, rs1: 2, rs2: 3 }),
    (0x023170B3, RvInst::Op { op: RvOp::Remu,   rd: 1, rs1: 2, rs2: 3 }),
    // --- OP-32 ---
    (0x003100BB, RvInst::Op { op: RvOp::Addw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x403100BB, RvInst::Op { op: RvOp::Subw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x003110BB, RvInst::Op { op: RvOp::Sllw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x003150BB, RvInst::Op { op: RvOp::Srlw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x403150BB, RvInst::Op { op: RvOp::Sraw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x023100BB, RvInst::Op { op: RvOp::Mulw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x023140BB, RvInst::Op { op: RvOp::Divw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x023150BB, RvInst::Op { op: RvOp::Divuw,  rd: 1, rs1: 2, rs2: 3 }),
    (0x023160BB, RvInst::Op { op: RvOp::Remw,   rd: 1, rs1: 2, rs2: 3 }),
    (0x023170BB, RvInst::Op { op: RvOp::Remuw,  rd: 1, rs1: 2, rs2: 3 }),
    // --- OP-IMM: imm = -1 (all ones, the sign-extension edge) ---
    (0xFFF10093, RvInst::OpImm { op: RvOp::Add,  rd: 1, rs1: 2, imm: -1 }),
    (0xFFF12093, RvInst::OpImm { op: RvOp::Slt,  rd: 1, rs1: 2, imm: -1 }),
    (0xFFF13093, RvInst::OpImm { op: RvOp::Sltu, rd: 1, rs1: 2, imm: -1 }),
    (0xFFF14093, RvInst::OpImm { op: RvOp::Xor,  rd: 1, rs1: 2, imm: -1 }),
    (0xFFF16093, RvInst::OpImm { op: RvOp::Or,   rd: 1, rs1: 2, imm: -1 }),
    (0xFFF17093, RvInst::OpImm { op: RvOp::And,  rd: 1, rs1: 2, imm: -1 }),
    // 64-bit shifts: shamt 63 (6-bit field edge)
    (0x03F11093, RvInst::OpImm { op: RvOp::Sll, rd: 1, rs1: 2, imm: 63 }),
    (0x03F15093, RvInst::OpImm { op: RvOp::Srl, rd: 1, rs1: 2, imm: 63 }),
    (0x43F15093, RvInst::OpImm { op: RvOp::Sra, rd: 1, rs1: 2, imm: 63 }),
    // --- OP-IMM-32 ---
    (0xFFF1009B, RvInst::OpImm { op: RvOp::Addw, rd: 1, rs1: 2, imm: -1 }),
    (0x01F1109B, RvInst::OpImm { op: RvOp::Sllw, rd: 1, rs1: 2, imm: 31 }),
    (0x01F1509B, RvInst::OpImm { op: RvOp::Srlw, rd: 1, rs1: 2, imm: 31 }),
    (0x41F1509B, RvInst::OpImm { op: RvOp::Sraw, rd: 1, rs1: 2, imm: 31 }),
    // --- LOAD: offset = -2048 (I-immediate minimum) ---
    (0x80010083, RvInst::Load { width: RvWidth::B,  rd: 1, rs1: 2, offset: -2048 }),
    (0x80011083, RvInst::Load { width: RvWidth::H,  rd: 1, rs1: 2, offset: -2048 }),
    (0x80012083, RvInst::Load { width: RvWidth::W,  rd: 1, rs1: 2, offset: -2048 }),
    (0x80013083, RvInst::Load { width: RvWidth::D,  rd: 1, rs1: 2, offset: -2048 }),
    (0x80014083, RvInst::Load { width: RvWidth::Bu, rd: 1, rs1: 2, offset: -2048 }),
    (0x80015083, RvInst::Load { width: RvWidth::Hu, rd: 1, rs1: 2, offset: -2048 }),
    (0x80016083, RvInst::Load { width: RvWidth::Wu, rd: 1, rs1: 2, offset: -2048 }),
    // --- STORE: offset = 2047 (S-immediate maximum, split field) ---
    (0x7E310FA3, RvInst::Store { width: RvWidth::B, rs2: 3, rs1: 2, offset: 2047 }),
    (0x7E311FA3, RvInst::Store { width: RvWidth::H, rs2: 3, rs1: 2, offset: 2047 }),
    (0x7E312FA3, RvInst::Store { width: RvWidth::W, rs2: 3, rs1: 2, offset: 2047 }),
    (0x7E313FA3, RvInst::Store { width: RvWidth::D, rs2: 3, rs1: 2, offset: 2047 }),
    // --- BRANCH: offset = -4096 (B-immediate minimum) ---
    (0x80208063, RvInst::Branch { cond: RvBranch::Eq,  rs1: 1, rs2: 2, offset: -4096 }),
    (0x80209063, RvInst::Branch { cond: RvBranch::Ne,  rs1: 1, rs2: 2, offset: -4096 }),
    (0x8020C063, RvInst::Branch { cond: RvBranch::Lt,  rs1: 1, rs2: 2, offset: -4096 }),
    (0x8020D063, RvInst::Branch { cond: RvBranch::Ge,  rs1: 1, rs2: 2, offset: -4096 }),
    (0x8020E063, RvInst::Branch { cond: RvBranch::Ltu, rs1: 1, rs2: 2, offset: -4096 }),
    (0x8020F063, RvInst::Branch { cond: RvBranch::Geu, rs1: 1, rs2: 2, offset: -4096 }),
    // --- JAL / JALR: J- and I-immediate minima ---
    (0x800000EF, RvInst::Jal { rd: 1, offset: -1_048_576 }),
    (0x0020006F, RvInst::Jal { rd: 0, offset: 2 }),
    (0x800280E7, RvInst::Jalr { rd: 1, rs1: 5, offset: -2048 }),
    // --- LUI / AUIPC: U-immediates, pre-shifted, sign edge ---
    (0x800000B7, RvInst::Lui { rd: 1, imm: i32::MIN }),
    (0xFFFFF097, RvInst::Auipc { rd: 1, imm: -4096 }),
    // --- system / misc ---
    (0x0000000F, RvInst::Fence),
    (0x00000073, RvInst::Ecall),
    (0x00100073, RvInst::Ebreak),
    // --- canonical idioms ---
    (0x00000013, RvInst::OpImm { op: RvOp::Add, rd: 0, rs1: 0, imm: 0 }), // nop
    (0x00008067, RvInst::Jalr { rd: 0, rs1: 1, offset: 0 }),              // ret
];

#[test]
fn golden_table_round_trips() {
    assert_eq!(GOLDEN.len(), 68, "table covers the full supported set");
    for &(word, expected) in GOLDEN {
        let decoded = decode(word).unwrap_or_else(|e| panic!("decode {word:#010x}: {e:?}"));
        assert_eq!(decoded, expected, "decode {word:#010x}");
        assert_eq!(encode(&expected), word, "encode {expected:?}");
    }
}

/// The table is one canonical word per instruction — no duplicates.
#[test]
fn golden_table_words_are_distinct() {
    let mut words: Vec<u32> = GOLDEN.iter().map(|&(w, _)| w).collect();
    words.sort_unstable();
    words.dedup();
    assert_eq!(words.len(), GOLDEN.len());
}

/// `fence` variants with ordering bits set still decode (encode is the
/// canonical all-zero form, so this direction is decode-only).
#[test]
fn fence_with_ordering_bits_decodes() {
    assert_eq!(decode(0x0FF0000F).unwrap(), RvInst::Fence); // fence iorw,iorw
}

/// Every GOLDEN entry survives a second round-trip from the decoded side:
/// encode(decode(encode(i))) == encode(i).
#[test]
fn double_round_trip_is_stable() {
    for &(word, _) in GOLDEN {
        let once = decode(word).unwrap();
        let re = encode(&once);
        let twice = decode(re).unwrap();
        assert_eq!(once, twice);
        assert_eq!(re, word);
    }
}
