//! Malformed-input property test: the loader/translator pipeline is
//! total. Truncated, bit-flipped, byte-spliced, and pure-garbage images
//! must come back as structured `LoadError`s (or load and then translate
//! or fail structurally) — never a panic, never an abort.
//!
//! 500 seeded iterations of each mangling strategy, deterministic across
//! runs (fixed xorshift seed, no RNG dependency).

use hpa_rv::{fixtures, load_elf, load_flat, translate};

const ITERS: usize = 500;

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Exercise the full pipeline on arbitrary bytes; the only acceptable
/// outcomes are a structured error or a translated program.
fn pipeline_must_not_panic(bytes: &[u8]) {
    match load_elf(bytes) {
        Ok(image) => {
            // A mangled image may still parse; translation must stay
            // total too.
            let _ = translate(&image);
        }
        Err(e) => {
            // Errors must render (Display is part of the contract).
            let _ = e.to_string();
        }
    }
    if let Ok(image) = load_flat(bytes, 0x1_0000) {
        let _ = translate(&image);
    }
}

/// Flip 1–8 random bits in a valid fixture ELF.
#[test]
fn bit_flipped_fixtures_never_panic() {
    let base = fixtures::sieve().elf;
    let mut rng = Rng(0x1BAD_B002);
    for _ in 0..ITERS {
        let mut bytes = base.clone();
        for _ in 0..=rng.below(8) {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        pipeline_must_not_panic(&bytes);
    }
}

/// Truncate a valid fixture ELF at every kind of boundary.
#[test]
fn truncated_fixtures_never_panic() {
    let base = fixtures::matmul().elf;
    let mut rng = Rng(0x0777_7777);
    for _ in 0..ITERS {
        let len = rng.below(base.len() + 1);
        pipeline_must_not_panic(&base[..len]);
    }
}

/// Overwrite random spans of a valid ELF with random bytes (header and
/// phdr corruption included).
#[test]
fn byte_spliced_fixtures_never_panic() {
    let base = fixtures::quicksort().elf;
    let mut rng = Rng(0x5EED_5EED);
    for _ in 0..ITERS {
        let mut bytes = base.clone();
        let start = rng.below(bytes.len());
        let len = rng.below(bytes.len() - start).min(64);
        for b in &mut bytes[start..start + len] {
            *b = rng.next() as u8;
        }
        pipeline_must_not_panic(&bytes);
    }
}

/// Pure garbage of random lengths, with a valid magic prefix half the
/// time so parsing gets past the first gate.
#[test]
fn garbage_images_never_panic() {
    let mut rng = Rng(0xDEAD_10CC);
    for i in 0..ITERS {
        let len = rng.below(512);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        if i % 2 == 0 && bytes.len() >= 4 {
            bytes[..4].copy_from_slice(b"\x7fELF");
        }
        pipeline_must_not_panic(&bytes);
    }
}

/// Oversized inputs are rejected up front, without allocation blowups.
#[test]
fn oversized_images_are_rejected() {
    let bytes = vec![0u8; (64 << 20) + 1];
    assert!(load_elf(&bytes).is_err());
    assert!(load_flat(&bytes, 0x1_0000).is_err());
}

/// Phdr fields pushed to the numeric extremes (offset/size overflow
/// probes) stay structured errors.
#[test]
fn phdr_extreme_values_never_panic() {
    let base = fixtures::sieve().elf;
    let probes: [u64; 6] = [u64::MAX, u64::MAX - 55, 1 << 63, (1 << 32) - 1, 1 << 32, 0x0FFF_FFFF];
    // phdr table starts at 64; p_offset/p_vaddr/p_filesz/p_memsz at +8,
    // +16, +32, +40 within each 56-byte entry.
    for entry in 0..2usize {
        for field in [8usize, 16, 32, 40] {
            for probe in probes {
                let mut bytes = base.clone();
                let at = 64 + entry * 56 + field;
                bytes[at..at + 8].copy_from_slice(&probe.to_le_bytes());
                pipeline_must_not_panic(&bytes);
            }
        }
    }
}
