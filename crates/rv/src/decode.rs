//! RV64I(+M) instruction decoder and encoder.
//!
//! The decoder covers exactly the guest subset the translator supports:
//! the full RV64I base integer ISA (minus CSR instructions) plus the M
//! extension. The encoder is the decoder's inverse and exists for the
//! fixture assembler and the golden encoding tests — every decoded
//! instruction re-encodes to the original word.

use std::fmt;

/// A guest register number, `x0`..`x31`.
pub type XReg = u8;

/// Condition of a conditional branch (`funct3` of the BRANCH opcode).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RvBranch {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt` (signed)
    Lt,
    /// `bge` (signed)
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

impl RvBranch {
    /// All branch conditions.
    pub const ALL: [RvBranch; 6] =
        [RvBranch::Eq, RvBranch::Ne, RvBranch::Lt, RvBranch::Ge, RvBranch::Ltu, RvBranch::Geu];

    fn funct3(self) -> u32 {
        match self {
            RvBranch::Eq => 0,
            RvBranch::Ne => 1,
            RvBranch::Lt => 4,
            RvBranch::Ge => 5,
            RvBranch::Ltu => 6,
            RvBranch::Geu => 7,
        }
    }
}

/// Memory access width and extension of loads/stores (`funct3`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RvWidth {
    /// `lb`/`sb`: byte, sign-extending load.
    B,
    /// `lh`/`sh`: halfword, sign-extending load.
    H,
    /// `lw`/`sw`: word, sign-extending load.
    W,
    /// `ld`/`sd`: doubleword.
    D,
    /// `lbu`: byte, zero-extending (loads only).
    Bu,
    /// `lhu`: halfword, zero-extending (loads only).
    Hu,
    /// `lwu`: word, zero-extending (loads only).
    Wu,
}

impl RvWidth {
    fn funct3(self) -> u32 {
        match self {
            RvWidth::B => 0,
            RvWidth::H => 1,
            RvWidth::W => 2,
            RvWidth::D => 3,
            RvWidth::Bu => 4,
            RvWidth::Hu => 5,
            RvWidth::Wu => 6,
        }
    }
}

/// Register-register / register-immediate ALU operation.
///
/// Immediate forms exist only for the subset RV64I defines (`OpImm` /
/// `OpImm32`); the translator enforces that pairing, the enum just names
/// the operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum RvOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    // RV64I W-forms (operate on 32 bits, sign-extend the result).
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    // M extension.
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

/// One decoded RV64I(+M) instruction.
///
/// Immediates are fully assembled and sign-extended: `Lui`/`Auipc` carry
/// the shifted 32-bit value, branch/jump offsets are byte offsets relative
/// to the instruction's own address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RvInst {
    /// `lui rd, imm20` — `rd <- sext(imm20 << 12)`; `imm` is pre-shifted.
    Lui {
        /// Destination.
        rd: XReg,
        /// The shifted immediate (multiple of 4096).
        imm: i32,
    },
    /// `auipc rd, imm20` — `rd <- pc + sext(imm20 << 12)`; pre-shifted.
    Auipc {
        /// Destination.
        rd: XReg,
        /// The shifted immediate (multiple of 4096).
        imm: i32,
    },
    /// `jal rd, offset` — link `pc+4` into `rd`, jump to `pc+offset`.
    Jal {
        /// Link destination (`x0` discards).
        rd: XReg,
        /// Byte offset from this instruction (±1 MiB, even).
        offset: i32,
    },
    /// `jalr rd, offset(rs1)` — link `pc+4`, jump to `(rs1+offset)&!1`.
    Jalr {
        /// Link destination.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// Byte offset (12-bit signed).
        offset: i16,
    },
    /// Conditional branch to `pc+offset`.
    Branch {
        /// Condition.
        cond: RvBranch,
        /// Left comparison operand.
        rs1: XReg,
        /// Right comparison operand.
        rs2: XReg,
        /// Byte offset from this instruction (±4 KiB, even).
        offset: i32,
    },
    /// Load `rd <- MEM[rs1+offset]`.
    Load {
        /// Access width/extension.
        width: RvWidth,
        /// Destination.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// Byte offset (12-bit signed).
        offset: i16,
    },
    /// Store `MEM[rs1+offset] <- rs2`.
    Store {
        /// Access width (`B`/`H`/`W`/`D` only).
        width: RvWidth,
        /// Data register.
        rs2: XReg,
        /// Base register.
        rs1: XReg,
        /// Byte offset (12-bit signed).
        offset: i16,
    },
    /// Register-immediate ALU operation (`addi`, `slti`, shifts, ...).
    OpImm {
        /// Operation.
        op: RvOp,
        /// Destination.
        rd: XReg,
        /// Source.
        rs1: XReg,
        /// Sign-extended immediate (shift amount for shifts).
        imm: i16,
    },
    /// Register-register ALU operation.
    Op {
        /// Operation.
        op: RvOp,
        /// Destination.
        rd: XReg,
        /// Left source.
        rs1: XReg,
        /// Right source.
        rs2: XReg,
    },
    /// `fence`/`fence.i` — a no-op on this single-hart in-order-commit
    /// guest model.
    Fence,
    /// `ecall` — enters the ABI shim (exit / write).
    Ecall,
    /// `ebreak` — halts the machine.
    Ebreak,
}

/// Error for words that are not in the supported RV64I+M subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RvDecodeError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for RvDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported RISC-V instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for RvDecodeError {}

fn bits(word: u32, lsb: u32, n: u32) -> u32 {
    (word >> lsb) & ((1 << n) - 1)
}

fn rd(word: u32) -> XReg {
    bits(word, 7, 5) as XReg
}

fn rs1(word: u32) -> XReg {
    bits(word, 15, 5) as XReg
}

fn rs2(word: u32) -> XReg {
    bits(word, 20, 5) as XReg
}

fn funct3(word: u32) -> u32 {
    bits(word, 12, 3)
}

fn funct7(word: u32) -> u32 {
    bits(word, 25, 7)
}

/// I-type immediate: bits [31:20], sign-extended.
fn imm_i(word: u32) -> i16 {
    ((word as i32) >> 20) as i16
}

/// S-type immediate: [31:25] | [11:7], sign-extended.
fn imm_s(word: u32) -> i16 {
    let raw = (bits(word, 25, 7) << 5) | bits(word, 7, 5);
    (((raw << 20) as i32) >> 20) as i16
}

/// B-type immediate: byte offset, sign-extended, even.
fn imm_b(word: u32) -> i32 {
    let raw = (bits(word, 31, 1) << 12)
        | (bits(word, 7, 1) << 11)
        | (bits(word, 25, 6) << 5)
        | (bits(word, 8, 4) << 1);
    ((raw << 19) as i32) >> 19
}

/// J-type immediate: byte offset, sign-extended, even.
fn imm_j(word: u32) -> i32 {
    let raw = (bits(word, 31, 1) << 20)
        | (bits(word, 12, 8) << 12)
        | (bits(word, 20, 1) << 11)
        | (bits(word, 21, 10) << 1);
    ((raw << 11) as i32) >> 11
}

/// U-type immediate: bits [31:12], kept shifted, sign-extended.
fn imm_u(word: u32) -> i32 {
    (word & 0xFFFF_F000) as i32
}

/// Decodes one 32-bit RISC-V word.
///
/// # Errors
///
/// Returns [`RvDecodeError`] for anything outside the supported RV64I+M
/// subset (compressed instructions, CSRs, A/F/D extensions, ...).
pub fn decode(word: u32) -> Result<RvInst, RvDecodeError> {
    let err = RvDecodeError { word };
    let opcode = bits(word, 0, 7);
    Ok(match opcode {
        0x37 => RvInst::Lui { rd: rd(word), imm: imm_u(word) },
        0x17 => RvInst::Auipc { rd: rd(word), imm: imm_u(word) },
        0x6F => RvInst::Jal { rd: rd(word), offset: imm_j(word) },
        0x67 if funct3(word) == 0 => {
            RvInst::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) }
        }
        0x63 => {
            let cond = match funct3(word) {
                0 => RvBranch::Eq,
                1 => RvBranch::Ne,
                4 => RvBranch::Lt,
                5 => RvBranch::Ge,
                6 => RvBranch::Ltu,
                7 => RvBranch::Geu,
                _ => return Err(err),
            };
            RvInst::Branch { cond, rs1: rs1(word), rs2: rs2(word), offset: imm_b(word) }
        }
        0x03 => {
            let width = match funct3(word) {
                0 => RvWidth::B,
                1 => RvWidth::H,
                2 => RvWidth::W,
                3 => RvWidth::D,
                4 => RvWidth::Bu,
                5 => RvWidth::Hu,
                6 => RvWidth::Wu,
                _ => return Err(err),
            };
            RvInst::Load { width, rd: rd(word), rs1: rs1(word), offset: imm_i(word) }
        }
        0x23 => {
            let width = match funct3(word) {
                0 => RvWidth::B,
                1 => RvWidth::H,
                2 => RvWidth::W,
                3 => RvWidth::D,
                _ => return Err(err),
            };
            RvInst::Store { width, rs2: rs2(word), rs1: rs1(word), offset: imm_s(word) }
        }
        0x13 => {
            // OP-IMM; 64-bit shifts use a 6-bit shamt, so the "funct7"
            // discriminator is the top 6 bits only.
            let f6 = bits(word, 26, 6);
            let op = match (funct3(word), f6) {
                (0, _) => RvOp::Add,
                (2, _) => RvOp::Slt,
                (3, _) => RvOp::Sltu,
                (4, _) => RvOp::Xor,
                (6, _) => RvOp::Or,
                (7, _) => RvOp::And,
                (1, 0x00) => RvOp::Sll,
                (5, 0x00) => RvOp::Srl,
                (5, 0x10) => RvOp::Sra,
                _ => return Err(err),
            };
            let imm = match op {
                RvOp::Sll | RvOp::Srl | RvOp::Sra => bits(word, 20, 6) as i16,
                _ => imm_i(word),
            };
            RvInst::OpImm { op, rd: rd(word), rs1: rs1(word), imm }
        }
        0x1B => {
            // OP-IMM-32; 5-bit shamt, full funct7 discriminator.
            let op = match (funct3(word), funct7(word)) {
                (0, _) => RvOp::Addw,
                (1, 0x00) => RvOp::Sllw,
                (5, 0x00) => RvOp::Srlw,
                (5, 0x20) => RvOp::Sraw,
                _ => return Err(err),
            };
            let imm = match op {
                RvOp::Addw => imm_i(word),
                _ => bits(word, 20, 5) as i16,
            };
            RvInst::OpImm { op, rd: rd(word), rs1: rs1(word), imm }
        }
        0x33 => {
            let op = match (funct7(word), funct3(word)) {
                (0x00, 0) => RvOp::Add,
                (0x20, 0) => RvOp::Sub,
                (0x00, 1) => RvOp::Sll,
                (0x00, 2) => RvOp::Slt,
                (0x00, 3) => RvOp::Sltu,
                (0x00, 4) => RvOp::Xor,
                (0x00, 5) => RvOp::Srl,
                (0x20, 5) => RvOp::Sra,
                (0x00, 6) => RvOp::Or,
                (0x00, 7) => RvOp::And,
                (0x01, 0) => RvOp::Mul,
                (0x01, 1) => RvOp::Mulh,
                (0x01, 2) => RvOp::Mulhsu,
                (0x01, 3) => RvOp::Mulhu,
                (0x01, 4) => RvOp::Div,
                (0x01, 5) => RvOp::Divu,
                (0x01, 6) => RvOp::Rem,
                (0x01, 7) => RvOp::Remu,
                _ => return Err(err),
            };
            RvInst::Op { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
        }
        0x3B => {
            let op = match (funct7(word), funct3(word)) {
                (0x00, 0) => RvOp::Addw,
                (0x20, 0) => RvOp::Subw,
                (0x00, 1) => RvOp::Sllw,
                (0x00, 5) => RvOp::Srlw,
                (0x20, 5) => RvOp::Sraw,
                (0x01, 0) => RvOp::Mulw,
                (0x01, 4) => RvOp::Divw,
                (0x01, 5) => RvOp::Divuw,
                (0x01, 6) => RvOp::Remw,
                (0x01, 7) => RvOp::Remuw,
                _ => return Err(err),
            };
            RvInst::Op { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
        }
        0x0F => RvInst::Fence,
        0x73 if word == 0x0000_0073 => RvInst::Ecall,
        0x73 if word == 0x0010_0073 => RvInst::Ebreak,
        _ => return Err(err),
    })
}

fn r_type(opcode: u32, f7: u32, f3: u32, rd: XReg, rs1: XReg, rs2: XReg) -> u32 {
    (f7 << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (f3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn i_type(opcode: u32, f3: u32, rd: XReg, rs1: XReg, imm: i16) -> u32 {
    ((imm as u32 & 0xFFF) << 20)
        | (u32::from(rs1) << 15)
        | (f3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn s_type(opcode: u32, f3: u32, rs1: XReg, rs2: XReg, imm: i16) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (f3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn b_type(opcode: u32, f3: u32, rs1: XReg, rs2: XReg, offset: i32) -> u32 {
    assert!(offset % 2 == 0 && (-4096..4096).contains(&offset), "B offset {offset}");
    let imm = offset as u32 & 0x1FFF;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (f3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn j_type(opcode: u32, rd: XReg, offset: i32) -> u32 {
    assert!(offset % 2 == 0 && (-(1 << 20)..(1 << 20)).contains(&offset), "J offset {offset}");
    let imm = offset as u32 & 0x1F_FFFF;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (u32::from(rd) << 7)
        | opcode
}

/// Encodes one instruction back into its 32-bit word (the decoder's exact
/// inverse).
///
/// # Panics
///
/// Panics on out-of-range immediates or an immediate form of an operation
/// RV64I does not define one for (e.g. `subi`).
#[must_use]
pub fn encode(inst: &RvInst) -> u32 {
    match *inst {
        RvInst::Lui { rd, imm } => {
            assert_eq!(imm & 0xFFF, 0, "lui immediate must be shifted");
            (imm as u32) | (u32::from(rd) << 7) | 0x37
        }
        RvInst::Auipc { rd, imm } => {
            assert_eq!(imm & 0xFFF, 0, "auipc immediate must be shifted");
            (imm as u32) | (u32::from(rd) << 7) | 0x17
        }
        RvInst::Jal { rd, offset } => j_type(0x6F, rd, offset),
        RvInst::Jalr { rd, rs1, offset } => i_type(0x67, 0, rd, rs1, offset),
        RvInst::Branch { cond, rs1, rs2, offset } => b_type(0x63, cond.funct3(), rs1, rs2, offset),
        RvInst::Load { width, rd, rs1, offset } => i_type(0x03, width.funct3(), rd, rs1, offset),
        RvInst::Store { width, rs2, rs1, offset } => {
            assert!(width.funct3() < 4, "no store of width {width:?}");
            s_type(0x23, width.funct3(), rs1, rs2, offset)
        }
        RvInst::OpImm { op, rd, rs1, imm } => match op {
            RvOp::Add => i_type(0x13, 0, rd, rs1, imm),
            RvOp::Slt => i_type(0x13, 2, rd, rs1, imm),
            RvOp::Sltu => i_type(0x13, 3, rd, rs1, imm),
            RvOp::Xor => i_type(0x13, 4, rd, rs1, imm),
            RvOp::Or => i_type(0x13, 6, rd, rs1, imm),
            RvOp::And => i_type(0x13, 7, rd, rs1, imm),
            RvOp::Sll => {
                assert!((0..64).contains(&imm), "slli shamt {imm}");
                i_type(0x13, 1, rd, rs1, imm)
            }
            RvOp::Srl => {
                assert!((0..64).contains(&imm), "srli shamt {imm}");
                i_type(0x13, 5, rd, rs1, imm)
            }
            RvOp::Sra => {
                assert!((0..64).contains(&imm), "srai shamt {imm}");
                i_type(0x13, 5, rd, rs1, imm) | (0x10 << 26)
            }
            RvOp::Addw => i_type(0x1B, 0, rd, rs1, imm),
            RvOp::Sllw => {
                assert!((0..32).contains(&imm), "slliw shamt {imm}");
                i_type(0x1B, 1, rd, rs1, imm)
            }
            RvOp::Srlw => {
                assert!((0..32).contains(&imm), "srliw shamt {imm}");
                i_type(0x1B, 5, rd, rs1, imm)
            }
            RvOp::Sraw => {
                assert!((0..32).contains(&imm), "sraiw shamt {imm}");
                i_type(0x1B, 5, rd, rs1, imm) | (0x20 << 25)
            }
            _ => panic!("{op:?} has no immediate form"),
        },
        RvInst::Op { op, rd, rs1, rs2 } => {
            let (opcode, f7, f3) = match op {
                RvOp::Add => (0x33, 0x00, 0),
                RvOp::Sub => (0x33, 0x20, 0),
                RvOp::Sll => (0x33, 0x00, 1),
                RvOp::Slt => (0x33, 0x00, 2),
                RvOp::Sltu => (0x33, 0x00, 3),
                RvOp::Xor => (0x33, 0x00, 4),
                RvOp::Srl => (0x33, 0x00, 5),
                RvOp::Sra => (0x33, 0x20, 5),
                RvOp::Or => (0x33, 0x00, 6),
                RvOp::And => (0x33, 0x00, 7),
                RvOp::Mul => (0x33, 0x01, 0),
                RvOp::Mulh => (0x33, 0x01, 1),
                RvOp::Mulhsu => (0x33, 0x01, 2),
                RvOp::Mulhu => (0x33, 0x01, 3),
                RvOp::Div => (0x33, 0x01, 4),
                RvOp::Divu => (0x33, 0x01, 5),
                RvOp::Rem => (0x33, 0x01, 6),
                RvOp::Remu => (0x33, 0x01, 7),
                RvOp::Addw => (0x3B, 0x00, 0),
                RvOp::Subw => (0x3B, 0x20, 0),
                RvOp::Sllw => (0x3B, 0x00, 1),
                RvOp::Srlw => (0x3B, 0x00, 5),
                RvOp::Sraw => (0x3B, 0x20, 5),
                RvOp::Mulw => (0x3B, 0x01, 0),
                RvOp::Divw => (0x3B, 0x01, 4),
                RvOp::Divuw => (0x3B, 0x01, 5),
                RvOp::Remw => (0x3B, 0x01, 6),
                RvOp::Remuw => (0x3B, 0x01, 7),
            };
            r_type(opcode, f7, f3, rd, rs1, rs2)
        }
        RvInst::Fence => 0x0000_000F,
        RvInst::Ecall => 0x0000_0073,
        RvInst::Ebreak => 0x0010_0073,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_words() {
        // `addi x0, x0, 0` is the canonical nop.
        assert_eq!(
            decode(0x0000_0013).unwrap(),
            RvInst::OpImm { op: RvOp::Add, rd: 0, rs1: 0, imm: 0 }
        );
        // `ret` = jalr x0, 0(x1).
        assert_eq!(decode(0x0000_8067).unwrap(), RvInst::Jalr { rd: 0, rs1: 1, offset: 0 });
        assert_eq!(decode(0x0000_0073).unwrap(), RvInst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), RvInst::Ebreak);
    }

    #[test]
    fn unsupported_words_error() {
        for word in [
            0xFFFF_FFFF,
            0x0000_0000,
            0x0000_2073, // csrrs
            0x0200_0053, // fadd.s
            0x1000_0001, // compressed-looking garbage
        ] {
            assert!(decode(word).is_err(), "{word:#010x}");
        }
        let e = decode(0xFFFF_FFFF).unwrap_err();
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn immediates_sign_extend() {
        // addi x5, x6, -1
        let w = encode(&RvInst::OpImm { op: RvOp::Add, rd: 5, rs1: 6, imm: -1 });
        assert_eq!(decode(w).unwrap(), RvInst::OpImm { op: RvOp::Add, rd: 5, rs1: 6, imm: -1 });
        // Store with negative offset.
        let w = encode(&RvInst::Store { width: RvWidth::D, rs2: 7, rs1: 2, offset: -2048 });
        assert_eq!(
            decode(w).unwrap(),
            RvInst::Store { width: RvWidth::D, rs2: 7, rs1: 2, offset: -2048 }
        );
        // Branch with the most negative encodable offset.
        let w = encode(&RvInst::Branch { cond: RvBranch::Geu, rs1: 1, rs2: 2, offset: -4096 });
        assert_eq!(
            decode(w).unwrap(),
            RvInst::Branch { cond: RvBranch::Geu, rs1: 1, rs2: 2, offset: -4096 }
        );
        // Jal across the full range.
        for offset in [-(1 << 20), (1 << 20) - 2, -2, 2] {
            let w = encode(&RvInst::Jal { rd: 1, offset });
            assert_eq!(decode(w).unwrap(), RvInst::Jal { rd: 1, offset });
        }
    }
}
