//! Guest-image loaders: a minimal ELF64 executable parser and a flat
//! binary loader.
//!
//! Both produce a [`GuestImage`] — entry point plus loadable segments —
//! and both are total: every malformed, truncated or oversized input maps
//! to a structured [`LoadError`]. No code path panics; the byte-mangling
//! fuzz test in `tests/elf_fuzz.rs` holds the crate to that.

use std::fmt;

/// Upper bound on an input file; anything larger is rejected before
/// parsing (`hpa run` feeds user-supplied files straight in here).
pub const MAX_FILE_BYTES: usize = 64 << 20;

/// Upper bound on one segment's memory footprint, and on the highest
/// guest virtual address a segment may reach.
pub const MAX_SEGMENT_BYTES: u64 = 16 << 20;

/// Highest guest virtual address a segment may extend to.
pub const MAX_VADDR: u64 = 1 << 32;

/// One loadable segment of a guest image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Guest virtual address of the first byte.
    pub vaddr: u64,
    /// File-backed bytes (may be shorter than `memsz`; the rest is BSS).
    pub data: Vec<u8>,
    /// Total memory footprint in bytes (`>= data.len()`).
    pub memsz: u64,
    /// Whether the segment is executable (its words are translated).
    pub exec: bool,
}

/// A loaded guest program: where to start and what to map.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GuestImage {
    /// Guest entry-point address.
    pub entry: u64,
    /// Loadable segments, in file order.
    pub segments: Vec<Segment>,
}

/// Why an input could not be loaded. Every variant names the check that
/// failed; nothing in this module panics on malformed bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoadError {
    /// Input shorter than an ELF64 header (or empty for a flat binary).
    Truncated {
        /// How many bytes were needed.
        need: usize,
        /// How many were present.
        got: usize,
    },
    /// Input larger than [`MAX_FILE_BYTES`].
    FileTooLarge {
        /// The input length.
        got: usize,
    },
    /// The first four bytes are not `\x7fELF`.
    BadMagic,
    /// Not a 64-bit little-endian ELF.
    BadFormat {
        /// `EI_CLASS` (want 2 = 64-bit).
        class: u8,
        /// `EI_DATA` (want 1 = little-endian).
        data: u8,
    },
    /// `e_type` is not `ET_EXEC` (static executables only).
    BadType {
        /// The `e_type` found.
        e_type: u16,
    },
    /// `e_machine` is not `EM_RISCV`.
    BadMachine {
        /// The `e_machine` found.
        e_machine: u16,
    },
    /// `e_phentsize` is not the ELF64 program-header size (56).
    BadPhentsize {
        /// The size found.
        phentsize: u16,
    },
    /// The program-header table runs past the end of the file.
    PhdrOutOfBounds {
        /// `e_phoff`.
        phoff: u64,
        /// `e_phnum`.
        phnum: u16,
    },
    /// No `PT_LOAD` segment with execute permission was found.
    NoExecSegment,
    /// A segment's file range runs past the end of the file.
    SegmentOutOfBounds {
        /// Index in the program-header table.
        index: u16,
        /// `p_offset`.
        offset: u64,
        /// `p_filesz`.
        filesz: u64,
    },
    /// A segment's `p_filesz` exceeds its `p_memsz`.
    FileszExceedsMemsz {
        /// Index in the program-header table.
        index: u16,
    },
    /// A segment is larger than [`MAX_SEGMENT_BYTES`] or reaches past
    /// [`MAX_VADDR`].
    SegmentTooLarge {
        /// Index in the program-header table.
        index: u16,
        /// `p_vaddr`.
        vaddr: u64,
        /// `p_memsz`.
        memsz: u64,
    },
    /// An executable segment's address or size is not 4-byte aligned.
    MisalignedText {
        /// Index in the program-header table.
        index: u16,
        /// `p_vaddr`.
        vaddr: u64,
    },
    /// The entry point is not 4-byte aligned or lies outside every
    /// executable segment.
    BadEntry {
        /// `e_entry`.
        entry: u64,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LoadError::Truncated { need, got } => {
                write!(f, "truncated input: need {need} bytes, got {got}")
            }
            LoadError::FileTooLarge { got } => {
                write!(f, "input of {got} bytes exceeds the {MAX_FILE_BYTES}-byte limit")
            }
            LoadError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            LoadError::BadFormat { class, data } => {
                write!(f, "not a 64-bit little-endian ELF (class {class}, data {data})")
            }
            LoadError::BadType { e_type } => {
                write!(f, "e_type {e_type} is not ET_EXEC (2); only static executables load")
            }
            LoadError::BadMachine { e_machine } => {
                write!(f, "e_machine {e_machine} is not EM_RISCV (243)")
            }
            LoadError::BadPhentsize { phentsize } => {
                write!(f, "e_phentsize {phentsize} is not 56")
            }
            LoadError::PhdrOutOfBounds { phoff, phnum } => {
                write!(f, "program headers (phoff {phoff:#x}, phnum {phnum}) run past the file")
            }
            LoadError::NoExecSegment => write!(f, "no executable PT_LOAD segment"),
            LoadError::SegmentOutOfBounds { index, offset, filesz } => {
                write!(
                    f,
                    "segment {index} (offset {offset:#x}, filesz {filesz:#x}) runs past the file"
                )
            }
            LoadError::FileszExceedsMemsz { index } => {
                write!(f, "segment {index} has p_filesz > p_memsz")
            }
            LoadError::SegmentTooLarge { index, vaddr, memsz } => {
                write!(f, "segment {index} (vaddr {vaddr:#x}, memsz {memsz:#x}) exceeds limits")
            }
            LoadError::MisalignedText { index, vaddr } => {
                write!(f, "executable segment {index} at {vaddr:#x} is not 4-byte aligned")
            }
            LoadError::BadEntry { entry } => {
                write!(f, "entry {entry:#x} is misaligned or outside every executable segment")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// `PT_LOAD`.
const PT_LOAD: u32 = 1;
/// `PF_X`.
const PF_X: u32 = 1;
/// ELF64 header size.
const EHDR_SIZE: usize = 64;
/// ELF64 program-header entry size.
const PHDR_SIZE: u64 = 56;

fn read_u16(bytes: &[u8], at: usize) -> Result<u16, LoadError> {
    match bytes.get(at..at + 2) {
        Some(b) => Ok(u16::from_le_bytes([b[0], b[1]])),
        None => Err(LoadError::Truncated { need: at + 2, got: bytes.len() }),
    }
}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32, LoadError> {
    match bytes.get(at..at + 4) {
        Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        None => Err(LoadError::Truncated { need: at + 4, got: bytes.len() }),
    }
}

fn read_u64(bytes: &[u8], at: usize) -> Result<u64, LoadError> {
    match bytes.get(at..at + 8) {
        Some(b) => Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])),
        None => Err(LoadError::Truncated { need: at + 8, got: bytes.len() }),
    }
}

/// Parses an ELF64 `ET_EXEC` RISC-V image into its loadable segments.
///
/// Only the fields the frontend needs are interpreted: identification,
/// type, machine, entry, and the `PT_LOAD` program headers. Section
/// headers, dynamic linking and relocations are out of scope — static
/// executables only.
///
/// # Errors
///
/// A [`LoadError`] naming the first validation that failed; malformed
/// input of any shape returns an error, never panics.
pub fn load_elf(bytes: &[u8]) -> Result<GuestImage, LoadError> {
    if bytes.len() > MAX_FILE_BYTES {
        return Err(LoadError::FileTooLarge { got: bytes.len() });
    }
    if bytes.len() < EHDR_SIZE {
        return Err(LoadError::Truncated { need: EHDR_SIZE, got: bytes.len() });
    }
    if &bytes[0..4] != b"\x7fELF" {
        return Err(LoadError::BadMagic);
    }
    let (class, data) = (bytes[4], bytes[5]);
    if class != 2 || data != 1 {
        return Err(LoadError::BadFormat { class, data });
    }
    let e_type = read_u16(bytes, 16)?;
    if e_type != 2 {
        return Err(LoadError::BadType { e_type });
    }
    let e_machine = read_u16(bytes, 18)?;
    if e_machine != 243 {
        return Err(LoadError::BadMachine { e_machine });
    }
    let entry = read_u64(bytes, 24)?;
    let phoff = read_u64(bytes, 32)?;
    let phentsize = read_u16(bytes, 54)?;
    if phentsize != PHDR_SIZE as u16 {
        return Err(LoadError::BadPhentsize { phentsize });
    }
    let phnum = read_u16(bytes, 56)?;
    let table_end = phoff
        .checked_add(u64::from(phnum) * PHDR_SIZE)
        .filter(|&end| end <= bytes.len() as u64)
        .ok_or(LoadError::PhdrOutOfBounds { phoff, phnum })?;
    let _ = table_end;

    let mut segments = Vec::new();
    for index in 0..phnum {
        let at = (phoff + u64::from(index) * PHDR_SIZE) as usize;
        let p_type = read_u32(bytes, at)?;
        if p_type != PT_LOAD {
            continue;
        }
        let p_flags = read_u32(bytes, at + 4)?;
        let offset = read_u64(bytes, at + 8)?;
        let vaddr = read_u64(bytes, at + 16)?;
        let filesz = read_u64(bytes, at + 32)?;
        let memsz = read_u64(bytes, at + 40)?;
        if filesz > memsz {
            return Err(LoadError::FileszExceedsMemsz { index });
        }
        if memsz > MAX_SEGMENT_BYTES || vaddr.checked_add(memsz).is_none_or(|end| end > MAX_VADDR) {
            return Err(LoadError::SegmentTooLarge { index, vaddr, memsz });
        }
        let end = offset
            .checked_add(filesz)
            .filter(|&end| end <= bytes.len() as u64)
            .ok_or(LoadError::SegmentOutOfBounds { index, offset, filesz })?;
        let exec = p_flags & PF_X != 0;
        if exec && (vaddr % 4 != 0 || filesz % 4 != 0) {
            return Err(LoadError::MisalignedText { index, vaddr });
        }
        segments.push(Segment {
            vaddr,
            data: bytes[offset as usize..end as usize].to_vec(),
            memsz,
            exec,
        });
    }

    let entry_ok = entry % 4 == 0
        && segments
            .iter()
            .any(|s| s.exec && entry >= s.vaddr && entry < s.vaddr + s.data.len() as u64);
    if !segments.iter().any(|s| s.exec) {
        return Err(LoadError::NoExecSegment);
    }
    if !entry_ok {
        return Err(LoadError::BadEntry { entry });
    }
    Ok(GuestImage { entry, segments })
}

/// Wraps a raw flat binary — instruction words only, no header — as a
/// guest image based at `base` with entry at its first word.
///
/// # Errors
///
/// Rejects empty, oversized, misaligned or non-word-multiple inputs.
pub fn load_flat(bytes: &[u8], base: u64) -> Result<GuestImage, LoadError> {
    if bytes.len() > MAX_FILE_BYTES {
        return Err(LoadError::FileTooLarge { got: bytes.len() });
    }
    if bytes.is_empty() {
        return Err(LoadError::Truncated { need: 4, got: 0 });
    }
    if !base.is_multiple_of(4) || !bytes.len().is_multiple_of(4) {
        return Err(LoadError::MisalignedText { index: 0, vaddr: base });
    }
    if bytes.len() as u64 > MAX_SEGMENT_BYTES
        || base.checked_add(bytes.len() as u64).is_none_or(|end| end > MAX_VADDR)
    {
        return Err(LoadError::SegmentTooLarge {
            index: 0,
            vaddr: base,
            memsz: bytes.len() as u64,
        });
    }
    Ok(GuestImage {
        entry: base,
        segments: vec![Segment {
            vaddr: base,
            data: bytes.to_vec(),
            memsz: bytes.len() as u64,
            exec: true,
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_loader_validates() {
        assert!(matches!(load_flat(&[], 0x1000), Err(LoadError::Truncated { .. })));
        assert!(matches!(load_flat(&[0; 6], 0x1000), Err(LoadError::MisalignedText { .. })));
        assert!(matches!(load_flat(&[0; 4], 0x1002), Err(LoadError::MisalignedText { .. })));
        assert!(matches!(load_flat(&[0; 4], MAX_VADDR), Err(LoadError::SegmentTooLarge { .. })));
        let img = load_flat(&[0x13, 0, 0, 0], 0x1000).unwrap();
        assert_eq!(img.entry, 0x1000);
        assert_eq!(img.segments.len(), 1);
        assert!(img.segments[0].exec);
    }

    #[test]
    fn elf_loader_rejects_garbage_prefixes() {
        assert!(matches!(load_elf(&[]), Err(LoadError::Truncated { .. })));
        assert!(matches!(load_elf(b"MZ\x90\x00"), Err(LoadError::Truncated { .. })));
        assert!(matches!(load_elf(&[0u8; 64]), Err(LoadError::BadMagic)));
        let mut h = vec![0u8; 64];
        h[0..4].copy_from_slice(b"\x7fELF");
        h[4] = 1; // 32-bit
        h[5] = 1;
        assert!(matches!(load_elf(&h), Err(LoadError::BadFormat { class: 1, .. })));
    }
}
