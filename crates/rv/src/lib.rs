//! Real-binary RISC-V frontend for the Half-Price Architecture
//! reproduction.
//!
//! This crate turns compiled RV64I(+M) guest programs — static ELF64
//! executables or raw flat images — into [`hpa_isa::Program`]s that run
//! unmodified through both the reference emulator and the timing
//! simulator. It is the second decode frontend next to `hpa_asm`:
//! instead of hand-written internal assembly, the input is a real binary.
//!
//! The pipeline is three total (never-panicking) stages:
//!
//! 1. [`elf::load_elf`] / [`elf::load_flat`]: bytes → [`elf::GuestImage`]
//!    (validated segments + entry point), every malformed input a
//!    structured [`elf::LoadError`];
//! 2. [`decode::decode`]: instruction words → [`decode::RvInst`], with
//!    [`decode::encode`] as its exact inverse for testing;
//! 3. [`translate::translate`]: a decoded image → an internal
//!    [`hpa_isa::Program`], wrapped in a tiny ABI shim (stack pointer,
//!    `ecall` exit/write handling) so `main`-style guest code runs
//!    end-to-end.
//!
//! [`fixtures`] holds the checked-in guest binaries (quicksort, matmul,
//! prime sieve) together with host-side Rust reference models of each —
//! the differential oracle the test harness pins everything against.
//! [`rvasm`] is the in-repo assembler + ELF writer that builds those
//! fixtures reproducibly (the container has no RISC-V cross-compiler).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod elf;
pub mod fixtures;
pub mod rvasm;
pub mod translate;

pub use decode::{decode, encode, RvBranch, RvDecodeError, RvInst, RvOp, RvWidth, XReg};
pub use elf::{load_elf, load_flat, GuestImage, LoadError, Segment};
pub use translate::{translate, xreg, TranslateError, STACK_TOP};
