//! A tiny RISC-V assembler and ELF writer for building the checked-in
//! test fixtures.
//!
//! The container has no RISC-V cross-compiler, so the fixture binaries in
//! `fixtures/` are produced by this module: guest programs are written
//! against [`RvAsm`] (labels, the usual pseudo-instructions) and packed
//! into minimal `ET_EXEC` ELF64 images by [`build_elf`]. A regeneration
//! test pins the checked-in bytes to this generator, so the fixtures are
//! reproducible from source.

use crate::decode::{encode, RvBranch, RvInst, RvOp, RvWidth, XReg};
use std::collections::HashMap;

/// Conventional guest link addresses for fixtures: text low, data high,
/// both far below the shim's stack.
pub const TEXT_BASE: u64 = 0x1_0000;
/// Fixture data segment base (see [`TEXT_BASE`]).
pub const DATA_BASE: u64 = 0x8_0000;

/// One assembly item: a finished instruction or a label-relative one.
enum Item {
    Inst(RvInst),
    Branch { cond: RvBranch, rs1: XReg, rs2: XReg, label: String },
    Jal { rd: XReg, label: String },
}

/// A label-resolving RV64 program builder (guest side; contrast with
/// `hpa_asm::Asm`, which builds internal programs).
#[derive(Default)]
pub struct RvAsm {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl RvAsm {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> RvAsm {
        RvAsm::default()
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate definition (fixtures are compiled-in, so
    /// this is a build-time bug, not input validation).
    pub fn label(&mut self, name: &str) -> &mut RvAsm {
        let prev = self.labels.insert(name.to_string(), self.items.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, inst: RvInst) -> &mut RvAsm {
        self.items.push(Item::Inst(inst));
        self
    }

    /// `op rd, rs1, rs2` (R-type).
    pub fn op(&mut self, op: RvOp, rd: XReg, rs1: XReg, rs2: XReg) -> &mut RvAsm {
        self.inst(RvInst::Op { op, rd, rs1, rs2 })
    }

    /// `opi rd, rs1, imm` (I-type; `addi`, shifts, ...).
    pub fn opi(&mut self, op: RvOp, rd: XReg, rs1: XReg, imm: i16) -> &mut RvAsm {
        self.inst(RvInst::OpImm { op, rd, rs1, imm })
    }

    /// Loads a constant: one `addi` when it fits 12 bits, else the
    /// standard `lui`+`addiw` pair.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 32 bits (fixtures never need
    /// more).
    pub fn li(&mut self, rd: XReg, value: i64) -> &mut RvAsm {
        if let Ok(imm) = i16::try_from(value) {
            if (-2048..2048).contains(&imm) {
                return self.opi(RvOp::Add, rd, 0, imm);
            }
        }
        let v = i32::try_from(value).expect("fixture constants fit in 32 bits");
        let hi = v.wrapping_add(0x800) & !0xFFF;
        let lo = v.wrapping_sub(hi) as i16;
        self.inst(RvInst::Lui { rd, imm: hi });
        if lo != 0 {
            self.opi(RvOp::Addw, rd, rd, lo);
        }
        self
    }

    /// `mv rd, rs` (canonical `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: XReg, rs: XReg) -> &mut RvAsm {
        self.opi(RvOp::Add, rd, rs, 0)
    }

    /// A load of the given width.
    pub fn load(&mut self, width: RvWidth, rd: XReg, rs1: XReg, offset: i16) -> &mut RvAsm {
        self.inst(RvInst::Load { width, rd, rs1, offset })
    }

    /// A store of the given width.
    pub fn store(&mut self, width: RvWidth, rs2: XReg, rs1: XReg, offset: i16) -> &mut RvAsm {
        self.inst(RvInst::Store { width, rs2, rs1, offset })
    }

    /// A conditional branch to a label.
    pub fn branch(&mut self, cond: RvBranch, rs1: XReg, rs2: XReg, label: &str) -> &mut RvAsm {
        self.items.push(Item::Branch { cond, rs1, rs2, label: label.to_string() });
        self
    }

    /// `jal rd, label` (use `rd = 0` for a plain jump, `rd = 1` for a
    /// call).
    pub fn jal(&mut self, rd: XReg, label: &str) -> &mut RvAsm {
        self.items.push(Item::Jal { rd, label: label.to_string() });
        self
    }

    /// `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: XReg, rs1: XReg, offset: i16) -> &mut RvAsm {
        self.inst(RvInst::Jalr { rd, rs1, offset })
    }

    /// `ret` (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut RvAsm {
        self.jalr(0, 1, 0)
    }

    /// `ecall`.
    pub fn ecall(&mut self) -> &mut RvAsm {
        self.inst(RvInst::Ecall)
    }

    /// The exit idiom every fixture ends with: `a0 = code; a7 = 93;
    /// ecall`.
    pub fn exit(&mut self, code: i16) -> &mut RvAsm {
        self.li(10, i64::from(code));
        self.li(17, 93);
        self.ecall()
    }

    /// Resolves labels against `base` (the text load address) and encodes
    /// the program into little-endian words.
    ///
    /// # Panics
    ///
    /// Panics on an undefined label or an out-of-range branch — fixture
    /// build bugs, caught by the fixture tests.
    #[must_use]
    pub fn assemble(&self, base: u64) -> Vec<u32> {
        let resolve = |label: &str, at: usize| -> i32 {
            let target =
                *self.labels.get(label).unwrap_or_else(|| panic!("undefined label `{label}`"));
            (target as i64 - at as i64) as i32 * 4
        };
        let _ = base;
        self.items
            .iter()
            .enumerate()
            .map(|(at, item)| {
                let inst = match item {
                    Item::Inst(i) => *i,
                    Item::Branch { cond, rs1, rs2, label } => RvInst::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: resolve(label, at),
                    },
                    Item::Jal { rd, label } => RvInst::Jal { rd: *rd, offset: resolve(label, at) },
                };
                encode(&inst)
            })
            .collect()
    }
}

/// Packs text and data into a minimal static RISC-V ELF64 executable:
/// header, two `PT_LOAD` program headers (R+X text, R+W data), then the
/// segment bytes. `bss` extends the data segment's memory footprint past
/// its file bytes.
#[must_use]
pub fn build_elf(text: &[u32], data: &[u8], bss: u64) -> Vec<u8> {
    const EHDR: usize = 64;
    const PHDR: usize = 56;
    let text_bytes: Vec<u8> = text.iter().flat_map(|w| w.to_le_bytes()).collect();
    let text_off = (EHDR + 2 * PHDR) as u64;
    let data_off = text_off + text_bytes.len() as u64;

    let mut out = Vec::with_capacity(text_off as usize + text_bytes.len() + data.len());
    // ELF identification: magic, 64-bit, little-endian, version 1.
    out.extend_from_slice(b"\x7fELF\x02\x01\x01");
    out.resize(16, 0);
    out.extend_from_slice(&2u16.to_le_bytes()); // e_type = ET_EXEC
    out.extend_from_slice(&243u16.to_le_bytes()); // e_machine = EM_RISCV
    out.extend_from_slice(&1u32.to_le_bytes()); // e_version
    out.extend_from_slice(&TEXT_BASE.to_le_bytes()); // e_entry
    out.extend_from_slice(&(EHDR as u64).to_le_bytes()); // e_phoff
    out.extend_from_slice(&0u64.to_le_bytes()); // e_shoff
    out.extend_from_slice(&0u32.to_le_bytes()); // e_flags
    out.extend_from_slice(&(EHDR as u16).to_le_bytes()); // e_ehsize
    out.extend_from_slice(&(PHDR as u16).to_le_bytes()); // e_phentsize
    out.extend_from_slice(&2u16.to_le_bytes()); // e_phnum
    out.extend_from_slice(&[0; 6]); // e_shentsize, e_shnum, e_shstrndx

    let phdr = |out: &mut Vec<u8>, flags: u32, off: u64, vaddr: u64, filesz: u64, memsz: u64| {
        out.extend_from_slice(&1u32.to_le_bytes()); // p_type = PT_LOAD
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&vaddr.to_le_bytes()); // p_vaddr
        out.extend_from_slice(&vaddr.to_le_bytes()); // p_paddr
        out.extend_from_slice(&filesz.to_le_bytes());
        out.extend_from_slice(&memsz.to_le_bytes());
        out.extend_from_slice(&0x1000u64.to_le_bytes()); // p_align
    };
    let text_len = text_bytes.len() as u64;
    let data_len = data.len() as u64;
    phdr(&mut out, 0b101, text_off, TEXT_BASE, text_len, text_len); // R+X
    phdr(&mut out, 0b110, data_off, DATA_BASE, data_len, data_len + bss); // R+W

    out.extend_from_slice(&text_bytes);
    out.extend_from_slice(data);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::load_elf;

    #[test]
    fn assembled_elf_loads_back() {
        let mut a = RvAsm::new();
        a.label("start");
        a.li(5, 7);
        a.branch(RvBranch::Ne, 5, 0, "start");
        a.exit(0);
        let words = a.assemble(TEXT_BASE);
        let elf = build_elf(&words, &[1, 2, 3], 64);
        let img = load_elf(&elf).expect("own ELF loads");
        assert_eq!(img.entry, TEXT_BASE);
        assert_eq!(img.segments.len(), 2);
        let text = &img.segments[0];
        assert!(text.exec);
        assert_eq!(text.vaddr, TEXT_BASE);
        assert_eq!(text.data.len(), words.len() * 4);
        let data = &img.segments[1];
        assert!(!data.exec);
        assert_eq!(data.vaddr, DATA_BASE);
        assert_eq!(data.data, vec![1, 2, 3]);
        assert_eq!(data.memsz, 3 + 64);
    }

    #[test]
    fn li_covers_the_32_bit_range() {
        // Spot-check that li's lui+addiw pairs decode back to the right
        // constant under the architectural semantics.
        for v in
            [0i64, 1, -1, 2047, -2048, 2048, -2049, 0x8_0000, 0xF_0000, 0x7FFF_F7FF, -0x8000_0000]
        {
            let mut a = RvAsm::new();
            a.li(7, v);
            let mut x7 = 0xDEAD_BEEFu64;
            for w in a.assemble(TEXT_BASE) {
                match crate::decode::decode(w).expect("li emits valid words") {
                    RvInst::OpImm { op: RvOp::Add, rd: 7, rs1, imm } => {
                        let base = if rs1 == 0 { 0 } else { x7 };
                        x7 = base.wrapping_add_signed(i64::from(imm));
                    }
                    RvInst::OpImm { op: RvOp::Addw, rd: 7, rs1: 7, imm } => {
                        x7 = x7.wrapping_add_signed(i64::from(imm)) as i32 as i64 as u64;
                    }
                    RvInst::Lui { rd: 7, imm } => {
                        x7 = i64::from(imm) as u64;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(x7, v as u64, "li {v:#x}");
        }
    }
}
