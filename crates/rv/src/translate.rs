//! Guest-to-internal translation: RV64I(+M) text becomes an
//! `hpa_isa` [`Program`].
//!
//! Every guest instruction gets a label `g<hex-addr>` in the internal
//! program, and each one expands to zero or more internal instructions
//! (an expansion is contiguous, so a guest fall-through is an internal
//! fall-through). Branch displacements, `li` constant expansion and range
//! checks are all delegated to the [`Asm`] builder.
//!
//! ## ABI shim contract
//!
//! - The translator prepends a startup shim: `sp` (guest `x2`) is set to
//!   [`STACK_TOP`] and control branches to the guest entry point.
//! - `ecall` with `a7 == 93` (exit) halts the machine; any other `a7` is
//!   treated as a successful `write` — it returns `a2` in `a0` and is
//!   otherwise a no-op (the machine has no file descriptors).
//! - Guest `x31` (`t6`, internal `r30`) is the shim's scratch register:
//!   the `ecall` and signed-`div` expansions clobber it. Compiled code
//!   treats `t6` as caller-saved, so this is invisible to conforming
//!   guests.
//! - Link registers hold *internal* return addresses (`jal`/`jalr` link
//!   the internal fall-through), so `ret` and computed returns work.
//!   Function pointers materialized from *data* (jump tables, vtables)
//!   would hold guest text addresses and are unsupported; `auipc`+`jalr`
//!   pairs are folded to direct internal calls instead.

use crate::decode::{self, RvBranch, RvInst, RvOp, RvWidth, XReg};
use crate::elf::GuestImage;
use hpa_asm::{Asm, AsmError, Program};
use hpa_isa::{AluOp, CmpCond, Inst, JumpKind, MemWidth, Reg, RegOrLit};
use std::collections::HashSet;
use std::fmt;

/// Initial guest stack pointer. Grows down; sits far above the fixture
/// data segments and far below the emulator's address limit.
pub const STACK_TOP: u64 = 0x00F0_0000;

/// The Linux riscv64 `exit` syscall number the shim recognizes.
pub const SYS_EXIT: u64 = 93;

/// Why a guest image could not be translated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TranslateError {
    /// A text word is not in the supported RV64I+M subset.
    Unsupported {
        /// Guest address of the word.
        addr: u64,
        /// The word itself.
        word: u32,
    },
    /// The image has no executable words at all.
    EmptyText,
    /// The entry point is not the address of a decoded instruction.
    BadEntry {
        /// The entry address.
        entry: u64,
    },
    /// A branch or jump targets an address outside the text.
    BadTarget {
        /// Guest address of the branching instruction.
        addr: u64,
        /// The target it names.
        target: u64,
    },
    /// The assembler rejected the expansion (e.g. a compare-branch whose
    /// expanded displacement overflows its 13-bit field).
    Asm(AsmError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unsupported { addr, word } => {
                write!(f, "unsupported instruction {word:#010x} at {addr:#x}")
            }
            TranslateError::EmptyText => write!(f, "image has no executable words"),
            TranslateError::BadEntry { entry } => {
                write!(f, "entry {entry:#x} is not a decoded instruction")
            }
            TranslateError::BadTarget { addr, target } => {
                write!(f, "branch at {addr:#x} targets {target:#x}, outside the text")
            }
            TranslateError::Asm(e) => write!(f, "expansion: {e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<AsmError> for TranslateError {
    fn from(e: AsmError) -> TranslateError {
        TranslateError::Asm(e)
    }
}

/// Maps a guest register to its internal home: `x0` is the hard-wired
/// zero (`r31`), `x1..x31` shift down one to `r0..r30`.
#[must_use]
pub fn xreg(x: XReg) -> Reg {
    if x == 0 {
        Reg::ZERO
    } else {
        Reg::new(x - 1)
    }
}

/// The shim's scratch register: guest `t6` (`x31`).
const SCRATCH: Reg = Reg::R30;

fn glabel(addr: u64) -> String {
    format!("g{addr:x}")
}

fn alu_op(op: RvOp) -> AluOp {
    match op {
        RvOp::Add => AluOp::Add,
        RvOp::Sub => AluOp::Sub,
        RvOp::Sll => AluOp::Sll,
        RvOp::Slt => AluOp::CmpLt,
        RvOp::Sltu => AluOp::CmpUlt,
        RvOp::Xor => AluOp::Xor,
        RvOp::Srl => AluOp::Srl,
        RvOp::Sra => AluOp::Sra,
        RvOp::Or => AluOp::Or,
        RvOp::And => AluOp::And,
        RvOp::Addw => AluOp::AddW,
        RvOp::Subw => AluOp::SubW,
        RvOp::Sllw => AluOp::SllW,
        RvOp::Srlw => AluOp::SrlW,
        RvOp::Sraw => AluOp::SraW,
        RvOp::Mul => AluOp::Mul,
        RvOp::Mulh => AluOp::MulH,
        RvOp::Mulhsu => AluOp::MulHSU,
        RvOp::Mulhu => AluOp::MulHU,
        RvOp::Div => AluOp::Div,
        RvOp::Divu => AluOp::DivU,
        RvOp::Rem => AluOp::Rem,
        RvOp::Remu => AluOp::RemU,
        RvOp::Mulw => AluOp::MulW,
        RvOp::Divw => AluOp::DivW,
        RvOp::Divuw => AluOp::DivUW,
        RvOp::Remw => AluOp::RemW,
        RvOp::Remuw => AluOp::RemUW,
    }
}

fn cmp_cond(cond: RvBranch) -> CmpCond {
    match cond {
        RvBranch::Eq => CmpCond::Eq,
        RvBranch::Ne => CmpCond::Ne,
        RvBranch::Lt => CmpCond::Lt,
        RvBranch::Ge => CmpCond::Ge,
        RvBranch::Ltu => CmpCond::Ltu,
        RvBranch::Geu => CmpCond::Geu,
    }
}

fn load_width(width: RvWidth) -> MemWidth {
    match width {
        RvWidth::B => MemWidth::SByte,
        RvWidth::Bu => MemWidth::Byte,
        RvWidth::H => MemWidth::SHalf,
        RvWidth::Hu => MemWidth::Half,
        RvWidth::W => MemWidth::Long,
        RvWidth::Wu => MemWidth::ULong,
        RvWidth::D => MemWidth::Quad,
    }
}

fn store_width(width: RvWidth) -> MemWidth {
    match width {
        RvWidth::B | RvWidth::Bu => MemWidth::Byte,
        RvWidth::H | RvWidth::Hu => MemWidth::Half,
        RvWidth::W | RvWidth::Wu => MemWidth::Long,
        RvWidth::D => MemWidth::Quad,
    }
}

/// Translates a loaded guest image into an internal program.
///
/// The returned program starts with the startup shim, contains one
/// labelled expansion per guest instruction in address order, and carries
/// every guest segment (text included, for rodata pools) as an initial
/// data image at its guest virtual address.
///
/// # Errors
///
/// See [`TranslateError`]; malformed or unsupported input never panics.
pub fn translate(image: &GuestImage) -> Result<Program, TranslateError> {
    // Decode every executable word first so branch targets can be
    // validated against the full text before any code is emitted.
    let mut text: Vec<(u64, RvInst)> = Vec::new();
    for seg in image.segments.iter().filter(|s| s.exec) {
        for (k, word) in seg.data.chunks_exact(4).enumerate() {
            let addr = seg.vaddr + 4 * k as u64;
            let word = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
            let inst =
                decode::decode(word).map_err(|_| TranslateError::Unsupported { addr, word })?;
            text.push((addr, inst));
        }
    }
    if text.is_empty() {
        return Err(TranslateError::EmptyText);
    }
    text.sort_by_key(|&(addr, _)| addr);
    let addrs: HashSet<u64> = text.iter().map(|&(a, _)| a).collect();
    if !addrs.contains(&image.entry) {
        return Err(TranslateError::BadEntry { entry: image.entry });
    }
    let target_of = |addr: u64, target: u64| -> Result<String, TranslateError> {
        if addrs.contains(&target) {
            Ok(glabel(target))
        } else {
            Err(TranslateError::BadTarget { addr, target })
        }
    };

    let mut a = Asm::new();
    // Startup shim: stack, then jump to the guest entry.
    a.li(xreg(2), STACK_TOP as i64);
    a.br(glabel(image.entry));

    // `auipc rd, hi` remembered across one instruction, for the
    // `auipc`+`jalr` direct-call fold.
    let mut prev_auipc: Option<(u64, XReg, i32)> = None;
    for &(addr, inst) in &text {
        a.label(glabel(addr));
        let this_auipc = match inst {
            RvInst::Auipc { rd, imm } => Some((addr, rd, imm)),
            _ => None,
        };
        match inst {
            RvInst::Lui { rd, imm } => {
                a.li(xreg(rd), i64::from(imm));
            }
            RvInst::Auipc { rd, imm } => {
                // The guest PC is a link-time constant, so fold it. The
                // result is a guest address: valid for data, folded away
                // for the `jalr` call idiom below.
                a.li(xreg(rd), addr.wrapping_add_signed(i64::from(imm)) as i64);
            }
            RvInst::Jal { rd, offset } => {
                let target = target_of(addr, addr.wrapping_add_signed(i64::from(offset)))?;
                if rd == 0 {
                    a.br(target);
                } else {
                    a.bsr(xreg(rd), target);
                }
            }
            RvInst::Jalr { rd, rs1, offset } => {
                let fold = prev_auipc.and_then(|(pa, prd, pimm)| {
                    (prd == rs1 && rs1 != 0).then(|| {
                        pa.wrapping_add_signed(i64::from(pimm))
                            .wrapping_add_signed(i64::from(offset))
                            & !1
                    })
                });
                match fold {
                    Some(target) if addrs.contains(&target) => {
                        if rd == 0 {
                            a.br(glabel(target));
                        } else {
                            a.bsr(xreg(rd), glabel(target));
                        }
                    }
                    _ => {
                        // The base register holds an internal address
                        // (written by a `bsr`/`jsr` link), so an indirect
                        // jump through it is exact.
                        let kind = if rd == 0 && rs1 == 1 && offset == 0 {
                            JumpKind::Ret
                        } else if rd == 1 {
                            JumpKind::Jsr
                        } else {
                            JumpKind::Jmp
                        };
                        a.raw(Inst::Jump { kind, rt: xreg(rd), base: xreg(rs1), disp: offset });
                    }
                }
            }
            RvInst::Branch { cond, rs1, rs2, offset } => {
                let target = target_of(addr, addr.wrapping_add_signed(i64::from(offset)))?;
                a.cbranch_to(cmp_cond(cond), xreg(rs1), xreg(rs2), target);
            }
            RvInst::Load { width, rd, rs1, offset } => {
                a.raw(Inst::Load {
                    width: load_width(width),
                    rt: xreg(rd),
                    base: xreg(rs1),
                    disp: offset,
                });
            }
            RvInst::Store { width, rs2, rs1, offset } => {
                a.raw(Inst::Store {
                    width: store_width(width),
                    rt: xreg(rs2),
                    base: xreg(rs1),
                    disp: offset,
                });
            }
            RvInst::OpImm { op, rd, rs1, imm } => {
                a.raw(Inst::Op {
                    op: alu_op(op),
                    ra: xreg(rs1),
                    rb: RegOrLit::Lit(imm),
                    rc: xreg(rd),
                });
            }
            RvInst::Op { op: RvOp::Div, rd, rs1, rs2 } if rd != 0 => {
                // The legacy `div` yields 0 on division by zero where
                // RISC-V requires all-ones; patch the quotient with -1
                // when the divisor was zero. The divisor is snapshotted
                // first if the quotient overwrites it.
                let skip = format!("g{addr:x}q");
                if rd == rs2 {
                    a.mov(SCRATCH, xreg(rs2));
                    a.div(xreg(rd), xreg(rs1), xreg(rs2));
                    a.cbranch_to(CmpCond::Ne, SCRATCH, Reg::ZERO, skip.clone());
                } else {
                    a.div(xreg(rd), xreg(rs1), xreg(rs2));
                    a.cbranch_to(CmpCond::Ne, xreg(rs2), Reg::ZERO, skip.clone());
                }
                a.add(xreg(rd), xreg(rd), -1i16);
                a.label(skip);
            }
            RvInst::Op { op, rd, rs1, rs2 } => {
                a.raw(Inst::Op {
                    op: alu_op(op),
                    ra: xreg(rs1),
                    rb: RegOrLit::Reg(xreg(rs2)),
                    rc: xreg(rd),
                });
            }
            RvInst::Fence => {
                // Single hart, in-order commit: nothing to order.
            }
            RvInst::Ecall => {
                // a7 == SYS_EXIT stops the machine; anything else is the
                // `write` path: report a2 bytes written in a0.
                let not_exit = format!("g{addr:x}s");
                a.li(SCRATCH, SYS_EXIT as i64);
                a.cbranch_to(CmpCond::Ne, xreg(17), SCRATCH, not_exit.clone());
                a.halt();
                a.label(not_exit);
                a.mov(xreg(10), xreg(12));
            }
            RvInst::Ebreak => {
                a.halt();
            }
        }
        prev_auipc = this_auipc;
    }
    // Falling off the end of the text stops the machine instead of
    // running into unmapped internal addresses.
    a.halt();

    // Every guest segment is an initial data image at its guest address;
    // text segments ride along so rodata pools inside them stay readable.
    // BSS (memsz > filesz) needs nothing: guest memory reads as zero.
    for seg in &image.segments {
        if !seg.data.is_empty() {
            a.data_bytes(seg.vaddr, &seg.data);
        }
    }
    Ok(a.assemble()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::load_flat;

    fn flat_program(words: &[u32]) -> Result<Program, TranslateError> {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        translate(&load_flat(&bytes, 0x1_0000).expect("valid flat image"))
    }

    #[test]
    fn minimal_exit_program_translates() {
        // li a7, 93; ecall
        let p = flat_program(&[
            decode::encode(&RvInst::OpImm { op: RvOp::Add, rd: 17, rs1: 0, imm: 93 }),
            decode::encode(&RvInst::Ecall),
        ])
        .expect("translates");
        // Shim (li sp = 2 insts for a 24-bit constant, br) + addi + the
        // 4-inst ecall expansion + trailing halt; exact length is not a
        // contract, the labels are.
        assert!(p.label_addr("g10000").is_some());
        assert!(p.label_addr("g10004").is_some());
        assert!(p.insts().contains(&Inst::Halt));
    }

    #[test]
    fn unsupported_word_is_a_structured_error() {
        let err = flat_program(&[0xFFFF_FFFF]).unwrap_err();
        assert_eq!(err, TranslateError::Unsupported { addr: 0x1_0000, word: 0xFFFF_FFFF });
    }

    #[test]
    fn branch_outside_text_is_rejected() {
        // beq x0, x0, +64 with only two words of text.
        let err = flat_program(&[
            decode::encode(&RvInst::Branch { cond: RvBranch::Eq, rs1: 0, rs2: 0, offset: 64 }),
            decode::encode(&RvInst::Ecall),
        ])
        .unwrap_err();
        assert_eq!(err, TranslateError::BadTarget { addr: 0x1_0000, target: 0x1_0040 });
    }

    #[test]
    fn register_map_pins_the_abi() {
        assert_eq!(xreg(0), Reg::ZERO);
        assert_eq!(xreg(1), Reg::R0); // ra
        assert_eq!(xreg(2), Reg::R1); // sp
        assert_eq!(xreg(11), Reg::R10); // a1 = the workload checksum register
        assert_eq!(xreg(31), SCRATCH); // t6 = shim scratch
    }
}
