//! # hpa-core — the Half-Price Architecture reproduction, in one crate
//!
//! This is the top-level library of the workspace reproducing *Half-Price
//! Architecture* (Ilhyun Kim and Mikko H. Lipasti, ISCA 2003). It ties the
//! substrate crates together and exposes the experiment API used by the
//! examples and the `hpa-bench` harness:
//!
//! * [`Scheme`] names each machine configuration the paper evaluates
//!   (base, sequential wakeup with/without predictor, tag elimination,
//!   sequential register access, extra RF stage, half-ported crossbar,
//!   combined);
//! * [`MachineWidth`] selects the paper's 4-wide or 8-wide machine
//!   (Table 1);
//! * [`run_workload`] simulates one benchmark under one configuration and
//!   verifies that timing never changed the architectural result;
//! * [`run_matrix`] sweeps benchmarks × schemes serially, and
//!   [`run_matrix_parallel`] fans the independent cells out across worker
//!   threads ([`pool`]) with bit-identical results;
//! * [`report`] renders every figure and table of the paper's evaluation
//!   from the collected statistics.
//!
//! The underlying pieces are re-exported: the ISA (`isa`), assembler
//! (`asm`), functional emulator (`emu`), branch/operand predictors
//! (`bpred`), cache hierarchy (`cache`), circuit delay models
//! (`circuits`), the cycle-level out-of-order simulator (`sim`) and the
//! twelve SPEC CINT2000 stand-in workloads (`workloads`).
//!
//! # Example
//!
//! ```
//! use hpa_core::{run_workload, MachineWidth, Scheme};
//! use hpa_core::workloads::Scale;
//!
//! # fn main() -> Result<(), hpa_core::RunError> {
//! let base = run_workload("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Base)?;
//! let half = run_workload("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Combined)?;
//! let slowdown = 1.0 - half.stats.ipc() / base.stats.ipc();
//! assert!(slowdown < 0.10, "half-price costs only a few percent");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpa_asm as asm;
pub use hpa_bpred as bpred;
pub use hpa_cache as cache;
pub use hpa_circuits as circuits;
pub use hpa_emu as emu;
pub use hpa_isa as isa;
pub use hpa_obs as obs;
pub use hpa_rv as rv;
pub use hpa_sim as sim;
pub use hpa_workloads as workloads;

mod backend;
pub mod pool;
pub mod report;
mod runner;
mod scheme;

pub use backend::{ArchView, Backend, BackendError};
pub use hpa_obs::{Counters, CpiCategory, CpiStack};
pub use pool::{default_jobs, parallel_map, parallel_map_isolated, JobError};
pub use runner::{
    run_matrix, run_matrix_parallel, run_matrix_parallel_observed, run_prepared,
    run_prepared_observed, run_prepared_phase_timed, run_workload, run_workload_observed,
    run_workload_sampled, MatrixResult, RunError, RunResult,
};
pub use scheme::{MachineWidth, Scheme};
