//! Rendering every table and figure of the paper's evaluation from
//! collected statistics.
//!
//! Each `figure*`/`table*` function consumes [`MatrixResult`]s (or base-run
//! statistics) and produces a [`Table`] whose rows mirror what the paper
//! plots; the `hpa-bench` binaries print them, and `reproduce-all`
//! assembles them into `EXPERIMENTS.md`.

use crate::runner::MatrixResult;
use crate::scheme::Scheme;
use hpa_obs::CpiCategory;
use hpa_sim::SimStats;
use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title line, e.g. `Figure 6: wakeup slack`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from a title and headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch in `{}`", self.title);
        self.rows.push(row);
    }

    /// Renders as GitHub-flavored Markdown (used by `EXPERIMENTS.md`).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} ")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", num as f64 / den as f64 * 100.0)
    }
}

/// Base-machine statistics per workload, the input for the
/// characterization figures.
pub type BaseRuns<'a> = &'a [(&'a str, &'a SimStats)];

/// Table 2: committed instructions and base IPC per benchmark at both
/// widths.
#[must_use]
pub fn table2(four: BaseRuns<'_>, eight: BaseRuns<'_>) -> Table {
    let mut t = Table::new(
        "Table 2: benchmarks, instruction counts and base IPC",
        &["bench", "insts", "IPC 4-wide", "IPC 8-wide"],
    );
    for ((name, s4), (_, s8)) in four.iter().zip(eight) {
        t.push_row(vec![
            (*name).to_string(),
            s4.committed.to_string(),
            format!("{:.2}", s4.ipc()),
            format!("{:.2}", s8.ipc()),
        ]);
    }
    t
}

/// Figure 2: percentage of 2-source-format instructions (stores split
/// out).
#[must_use]
pub fn figure2(base: BaseRuns<'_>) -> Table {
    let mut t = Table::new(
        "Figure 2: 2-source-format instructions (% of dynamic instructions)",
        &["bench", "2-src format", "stores", "0/1-src", "nops"],
    );
    for (name, s) in base {
        let f = &s.format;
        let total = f.total();
        t.push_row(vec![
            (*name).to_string(),
            pct(f.two_src, total),
            pct(f.stores, total),
            pct(f.zero_src + f.one_src, total),
            pct(f.nops, total),
        ]);
    }
    t
}

/// Figure 3: breakdown of 2-source-format instructions by unique sources.
#[must_use]
pub fn figure3(base: BaseRuns<'_>) -> Table {
    let mut t = Table::new(
        "Figure 3: 2-source-format breakdown (% of dynamic instructions)",
        &["bench", "2 unique srcs (2-source insts)", "1 unique (zero-reg/dup)", "nops"],
    );
    for (name, s) in base {
        let f = &s.format;
        let total = f.total();
        t.push_row(vec![
            (*name).to_string(),
            pct(f.two_src_two_unique, total),
            pct(f.two_src_one_unique, total),
            pct(f.nops, total),
        ]);
    }
    t
}

/// Figure 4: 2-source instructions by number of ready operands at insert.
#[must_use]
pub fn figure4(base: BaseRuns<'_>) -> Table {
    let mut t = Table::new(
        "Figure 4: ready operands of 2-source insts at scheduler insert",
        &["bench", "0 ready (2 pending)", "1 ready", "2 ready"],
    );
    for (name, s) in base {
        let total: u64 = s.ready_at_insert.iter().sum();
        t.push_row(vec![
            (*name).to_string(),
            pct(s.ready_at_insert[0], total),
            pct(s.ready_at_insert[1], total),
            pct(s.ready_at_insert[2], total),
        ]);
    }
    t
}

/// Figure 6: wakeup slack between the two operand wakeups of
/// 2-pending-source instructions.
#[must_use]
pub fn figure6(base: BaseRuns<'_>) -> Table {
    let mut t = Table::new(
        "Figure 6: slack between two operand wakeups (2-pending-source insts)",
        &["bench", "0 cycles (simultaneous)", "1 cycle", "2 cycles", "3+ cycles"],
    );
    for (name, s) in base {
        let total: u64 = s.wakeup_slack.iter().sum();
        t.push_row(vec![
            (*name).to_string(),
            pct(s.wakeup_slack[0], total),
            pct(s.wakeup_slack[1], total),
            pct(s.wakeup_slack[2], total),
            pct(s.wakeup_slack[3], total),
        ]);
    }
    t
}

/// Table 3: wakeup-order stability and last-arriving operand side.
#[must_use]
pub fn table3(four: BaseRuns<'_>, eight: BaseRuns<'_>) -> Table {
    let mut t = Table::new(
        "Table 3: wakeup order (same/diff vs last) and last-arriving side (left/right)",
        &["bench", "4w same/diff", "4w left/right", "8w same/diff", "8w left/right"],
    );
    for ((name, s4), (_, s8)) in four.iter().zip(eight) {
        let fmt_w = |s: &SimStats| {
            let o = &s.wakeup_order;
            let hist = o.same_as_last + o.diff_from_last;
            let side = o.last_left + o.last_right;
            (
                format!("{} / {}", pct(o.same_as_last, hist), pct(o.diff_from_last, hist)),
                format!("{} / {}", pct(o.last_left, side), pct(o.last_right, side)),
            )
        };
        let (s4a, s4b) = fmt_w(s4);
        let (s8a, s8b) = fmt_w(s8);
        t.push_row(vec![(*name).to_string(), s4a, s4b, s8a, s8b]);
    }
    t
}

/// Figure 7: last-arriving operand predictor accuracy by table size.
#[must_use]
pub fn figure7(base: BaseRuns<'_>) -> Table {
    let sizes: Vec<usize> = base
        .first()
        .map(|(_, s)| s.last_arrival.iter().map(|(n, _)| *n).collect())
        .unwrap_or_default();
    let mut headers: Vec<String> = vec!["bench".into()];
    headers.extend(sizes.iter().map(|n| format!("{n}-entry")));
    headers.push("simultaneous".into());
    let mut t = Table {
        title: "Figure 7: last-arriving operand prediction accuracy".into(),
        headers,
        rows: Vec::new(),
    };
    for (name, s) in base {
        let mut row = vec![(*name).to_string()];
        let mut simultaneous = "-".to_string();
        for (_, la) in &s.last_arrival {
            row.push(format!("{:.1}%", la.accuracy() * 100.0));
            simultaneous = pct(la.simultaneous, la.total());
        }
        row.push(simultaneous);
        t.push_row(row);
    }
    t
}

/// Figure 10: register-read categorization of 2-source instructions
/// (% of all committed instructions).
#[must_use]
pub fn figure10(base: BaseRuns<'_>) -> Table {
    let mut t = Table::new(
        "Figure 10: register accesses of 2-source insts (% of committed insts)",
        &[
            "bench",
            "back-to-back issue (<=1 read)",
            "2 ready at insert",
            "non-back-to-back",
            "needs 2 ports",
        ],
    );
    for (name, s) in base {
        let c = s.committed;
        t.push_row(vec![
            (*name).to_string(),
            pct(s.rf_back_to_back, c),
            pct(s.rf_two_ready, c),
            pct(s.rf_non_back_to_back, c),
            format!("{:.1}%", s.two_port_fraction() * 100.0),
        ]);
    }
    t
}

/// A normalized-IPC figure (14, 15 or 16): one column per scheme, values
/// relative to the base machine.
#[must_use]
pub fn normalized_ipc_figure(title: &str, matrix: &MatrixResult, schemes: &[Scheme]) -> Table {
    let mut headers = vec!["bench".to_string(), "base IPC".to_string()];
    headers.extend(schemes.iter().map(|s| s.label().to_string()));
    let mut t = Table { title: title.to_string(), headers, rows: Vec::new() };
    for row in &matrix.rows {
        let Some(base) = row.iter().find(|r| r.scheme == Scheme::Base) else { continue };
        let mut cells = vec![base.workload.to_string(), format!("{:.3}", base.stats.ipc())];
        for &scheme in schemes {
            match row.iter().find(|r| r.scheme == scheme) {
                Some(r) => cells.push(format!("{:.3}", r.stats.ipc() / base.stats.ipc())),
                None => cells.push("-".to_string()),
            }
        }
        t.push_row(cells);
    }
    // Averages row.
    let mut cells = vec!["average".to_string(), "-".to_string()];
    for &scheme in schemes {
        cells.push(format!("{:.3}", 1.0 - matrix.average_degradation(scheme)));
    }
    t.push_row(cells);
    t
}

/// CPI-stack table from an *observed* matrix (see
/// [`crate::run_matrix_parallel_observed`]): one row per (workload,
/// scheme) cell, one column per [`CpiCategory`], each the percentage of
/// the machine's issue slots attributed to that cause. The per-scheme
/// deltas against the base rows are the paper's Figures 10–14 degradation
/// sources, measured directly instead of inferred from end-to-end IPC.
///
/// Cells without counters (unobserved runs) are skipped.
#[must_use]
pub fn cpi_stack_table(title: &str, matrix: &MatrixResult, schemes: &[Scheme]) -> Table {
    let mut headers = vec!["bench".to_string(), "scheme".to_string()];
    headers.extend(CpiCategory::ALL.iter().map(|c| c.key().to_string()));
    let mut t = Table { title: title.to_string(), headers, rows: Vec::new() };
    for row in &matrix.rows {
        for &scheme in schemes {
            let Some(r) = row.iter().find(|r| r.scheme == scheme) else { continue };
            let Some(c) = r.counters.as_ref() else { continue };
            let mut cells = vec![r.workload.to_string(), scheme.key().to_string()];
            cells.extend(
                CpiCategory::ALL.iter().map(|&cat| format!("{:.2}", 100.0 * c.cpi.fraction(cat))),
            );
            t.push_row(cells);
        }
    }
    t
}

/// The circuit-delay claims of §3.3 and §4 (wakeup 466→374 ps, register
/// file 1.71→1.36 ns), regenerated from the analytic models.
#[must_use]
pub fn circuit_claims() -> Table {
    let wakeup = hpa_circuits::WakeupDelayModel::calibrated_018um();
    let rf = hpa_circuits::RegFileDelayModel::calibrated_018um();
    let mut t = Table::new(
        "Circuit claims (paper section 3.3 & 4)",
        &["structure", "conventional", "half-price", "improvement"],
    );
    t.push_row(vec![
        "wakeup logic, 4-wide 64-entry".into(),
        format!("{:.0} ps", wakeup.conventional(64, 4)),
        format!("{:.0} ps", wakeup.sequential_wakeup(64, 4)),
        format!("{:.1}% speedup", wakeup.speedup(64, 4) * 100.0),
    ]);
    t.push_row(vec![
        "register file, 160 entries, 8-wide".into(),
        format!("{:.2} ns", rf.conventional(160, 8) / 1000.0),
        format!("{:.2} ns", rf.sequential_access(160, 8) / 1000.0),
        format!("{:.1}% faster access", rf.reduction(160, 8) * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> SimStats {
        SimStats {
            cycles: 1000,
            committed: 1500,
            fetched: 1600,
            ready_at_insert: [10, 60, 30],
            wakeup_slack: [2, 50, 30, 18],
            rf_back_to_back: 300,
            rf_two_ready: 20,
            rf_non_back_to_back: 10,
            ..SimStats::default()
        }
    }

    #[test]
    fn tables_render_text_and_markdown() {
        let s = sample_stats();
        let base: Vec<(&str, &SimStats)> = vec![("gcc", &s)];
        for t in [figure2(&base), figure3(&base), figure4(&base), figure6(&base), figure10(&base)] {
            let text = t.to_string();
            assert!(text.contains("gcc"), "{text}");
            let md = t.to_markdown();
            assert!(md.starts_with("### "));
            assert!(md.contains("| gcc |"));
        }
    }

    #[test]
    fn figure4_percentages_sum_to_100() {
        let s = sample_stats();
        let base: Vec<(&str, &SimStats)> = vec![("x", &s)];
        let t = figure4(&base);
        let row = &t.rows[0];
        let total: f64 =
            row[1..].iter().map(|c| c.trim_end_matches('%').parse::<f64>().unwrap()).sum();
        assert!((total - 100.0).abs() < 0.3, "{total}");
    }

    #[test]
    fn circuit_claims_match_the_paper() {
        let t = circuit_claims();
        let text = t.to_string();
        assert!(text.contains("466 ps"));
        assert!(text.contains("374 ps"));
        assert!(text.contains("1.71 ns"));
        assert!(text.contains("1.36 ns"));
        assert!(text.contains("24.6%"));
        assert!(text.contains("20.5%"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }
}

#[cfg(test)]
mod matrix_report_tests {
    use super::*;
    use crate::runner::run_matrix;
    use crate::scheme::MachineWidth;
    use hpa_workloads::Scale;

    #[test]
    fn normalized_figure_from_a_real_matrix() {
        let m = run_matrix(
            &["gcc"],
            Scale::Tiny,
            MachineWidth::Four,
            &[Scheme::Base, Scheme::SeqRegAccess, Scheme::Combined],
            |_| {},
        )
        .expect("runs");
        let t = normalized_ipc_figure("test", &m, &[Scheme::SeqRegAccess, Scheme::Combined]);
        assert_eq!(t.headers.len(), 4);
        assert_eq!(t.rows.len(), 2, "gcc + average row");
        // Normalized values are close to (and at most slightly above) 1.
        for cell in &t.rows[0][2..] {
            let v: f64 = cell.parse().unwrap();
            assert!(v > 0.8 && v <= 1.01, "{v}");
        }
        assert_eq!(t.rows[1][0], "average");
        // Markdown renders a table for EXPERIMENTS.md.
        assert!(t.to_markdown().contains("| gcc |"));
    }

    #[test]
    fn missing_scheme_renders_a_dash() {
        let m = run_matrix(&["gcc"], Scale::Tiny, MachineWidth::Four, &[Scheme::Base], |_| {})
            .expect("runs");
        let t = normalized_ipc_figure("test", &m, &[Scheme::Combined]);
        assert_eq!(t.rows[0][2], "-");
    }
}
