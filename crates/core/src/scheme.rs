//! Named machine configurations from the paper's evaluation.

use hpa_sim::{RegFileScheme, SimConfig, WakeupScheme};

/// The machine width presets of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MachineWidth {
    /// 4-wide, 64-entry RUU, 32-entry LSQ.
    Four,
    /// 8-wide, 128-entry RUU, 64-entry LSQ.
    Eight,
}

impl MachineWidth {
    /// Both widths, in the paper's order.
    pub const ALL: [MachineWidth; 2] = [MachineWidth::Four, MachineWidth::Eight];

    /// The corresponding base simulator configuration.
    #[must_use]
    pub fn base_config(self) -> SimConfig {
        match self {
            MachineWidth::Four => SimConfig::four_wide(),
            MachineWidth::Eight => SimConfig::eight_wide(),
        }
    }

    /// Short label ("4-wide" / "8-wide").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MachineWidth::Four => "4-wide",
            MachineWidth::Eight => "8-wide",
        }
    }
}

/// Entries in the paper's Figure 7 sweep use a 1k-entry predictor for the
/// evaluated schemes (§5.1).
pub const EVAL_PREDICTOR_ENTRIES: usize = 1024;

/// One evaluated machine organization, as named in the paper's Figures
/// 14–16.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// The conventional base machine (normalization reference).
    Base,
    /// Sequential wakeup with the 1k-entry last-arriving predictor
    /// (Figure 14, left bars).
    SeqWakeupPredictor,
    /// Sequential wakeup with the static right-last policy
    /// (Figure 14, right bars).
    SeqWakeupStatic,
    /// Tag elimination with the 1k-entry predictor (Figure 14, middle
    /// bars; Ernst & Austin's scheme).
    TagElimination,
    /// Sequential register access (Figure 15, left bars).
    SeqRegAccess,
    /// Conventional register file with one extra pipeline stage
    /// (Figure 15, middle bars).
    ExtraRfStage,
    /// Half the read ports behind a fully connected crossbar
    /// (Figure 15, right bars).
    HalfPortsCrossbar,
    /// Sequential wakeup + sequential register access (Figure 16).
    Combined,
}

impl Scheme {
    /// Every scheme, base first.
    pub const ALL: [Scheme; 8] = [
        Scheme::Base,
        Scheme::SeqWakeupPredictor,
        Scheme::SeqWakeupStatic,
        Scheme::TagElimination,
        Scheme::SeqRegAccess,
        Scheme::ExtraRfStage,
        Scheme::HalfPortsCrossbar,
        Scheme::Combined,
    ];

    /// Applies the scheme to a width's base configuration.
    #[must_use]
    pub fn configure(self, width: MachineWidth) -> SimConfig {
        let base = width.base_config();
        match self {
            Scheme::Base => base,
            Scheme::SeqWakeupPredictor => base.with_wakeup(WakeupScheme::SequentialWakeup {
                predictor_entries: Some(EVAL_PREDICTOR_ENTRIES),
            }),
            Scheme::SeqWakeupStatic => {
                base.with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None })
            }
            Scheme::TagElimination => base.with_wakeup(WakeupScheme::TagElimination {
                predictor_entries: EVAL_PREDICTOR_ENTRIES,
            }),
            Scheme::SeqRegAccess => base.with_regfile(RegFileScheme::SequentialAccess),
            Scheme::ExtraRfStage => base.with_regfile(RegFileScheme::ExtraStage),
            Scheme::HalfPortsCrossbar => base.with_regfile(RegFileScheme::SharedCrossbar),
            Scheme::Combined => base
                .with_wakeup(WakeupScheme::SequentialWakeup {
                    predictor_entries: Some(EVAL_PREDICTOR_ENTRIES),
                })
                .with_regfile(RegFileScheme::SequentialAccess),
        }
    }

    /// The stable CLI key (`hpa run --scheme <key>`), also used in corpus
    /// reproducer headers.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Scheme::Base => "base",
            Scheme::SeqWakeupPredictor => "seq-wakeup",
            Scheme::SeqWakeupStatic => "seq-wakeup-static",
            Scheme::TagElimination => "tag-elimination",
            Scheme::SeqRegAccess => "seq-rf",
            Scheme::ExtraRfStage => "extra-rf-stage",
            Scheme::HalfPortsCrossbar => "crossbar",
            Scheme::Combined => "combined",
        }
    }

    /// Parses a CLI key produced by [`Scheme::key`].
    #[must_use]
    pub fn from_key(key: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.key() == key)
    }

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Base => "base",
            Scheme::SeqWakeupPredictor => "seq wakeup",
            Scheme::SeqWakeupStatic => "seq wakeup (no pred)",
            Scheme::TagElimination => "tag elimination",
            Scheme::SeqRegAccess => "seq RF access",
            Scheme::ExtraRfStage => "1 extra RF stage",
            Scheme::HalfPortsCrossbar => "reg + crossbar",
            Scheme::Combined => "seq wakeup + seq RF",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_identity() {
        let c = Scheme::Base.configure(MachineWidth::Four);
        assert_eq!(c.wakeup, WakeupScheme::Conventional);
        assert_eq!(c.regfile, RegFileScheme::DualPort);
        assert_eq!(c.width, 4);
    }

    #[test]
    fn combined_sets_both_techniques() {
        let c = Scheme::Combined.configure(MachineWidth::Eight);
        assert!(matches!(
            c.wakeup,
            WakeupScheme::SequentialWakeup { predictor_entries: Some(EVAL_PREDICTOR_ENTRIES) }
        ));
        assert_eq!(c.regfile, RegFileScheme::SequentialAccess);
        assert_eq!(c.width, 8);
        assert_eq!(c.ruu_size, 128);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Scheme::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Scheme::ALL.len());
    }

    #[test]
    fn keys_round_trip() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::from_key(s.key()), Some(s));
        }
        assert_eq!(Scheme::from_key("nonesuch"), None);
    }
}
