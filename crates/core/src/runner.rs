//! Experiment execution: workloads × schemes, with architectural
//! verification after every run.

use crate::pool::parallel_map_isolated;
use crate::scheme::{MachineWidth, Scheme};
use hpa_obs::Counters;
use hpa_sim::{
    PhaseTimes, SampleUnits, SampledEstimate, SampledRunner, SimConfig, SimFault, SimStats,
    Simulator,
};
use hpa_workloads::{workload, Scale, Workload, CHECKSUM_REG};
use std::fmt;

/// Errors from [`run_workload`].
#[derive(Clone, Debug)]
pub enum RunError {
    /// The workload name is not one of the twelve benchmarks.
    UnknownWorkload {
        /// The offending name.
        name: String,
    },
    /// The timing simulation changed the architectural result — a
    /// simulator bug, reported rather than panicking so sweeps can
    /// surface it.
    ChecksumMismatch {
        /// The workload.
        name: String,
        /// Checksum computed under the timing simulator's emulator.
        actual: u64,
        /// Reference checksum.
        expected: u64,
    },
    /// The simulation itself faulted (emulator error, deadlock, invariant
    /// or commit-hook violation) instead of running to completion.
    Sim {
        /// The workload.
        name: String,
        /// The structured fault.
        fault: SimFault,
    },
    /// A matrix cell's job panicked. The panic was caught at the job
    /// boundary, so the rest of the matrix still ran; the first panicking
    /// cell (row-major) is reported here.
    CellPanic {
        /// The workload of the panicking cell.
        name: String,
        /// The scheme of the panicking cell.
        scheme: Scheme,
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownWorkload { name } => write!(f, "unknown workload `{name}`"),
            RunError::ChecksumMismatch { name, actual, expected } => {
                write!(f, "{name}: timing run checksum {actual:#x} != reference {expected:#x}")
            }
            RunError::Sim { name, fault } => write!(f, "{name}: {fault}"),
            RunError::CellPanic { name, scheme, message } => {
                write!(f, "{name}/{}: cell panicked: {message}", scheme.key())
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of simulating one workload under one configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme that was simulated.
    pub scheme: Scheme,
    /// Machine width.
    pub width: MachineWidth,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// Observability registry (CPI stack, penalty histograms); present
    /// only for `*_observed` runs. Never affects `stats` — the
    /// differential suite holds observed and unobserved runs
    /// bit-identical.
    pub counters: Option<Counters>,
    /// Sampled-mode estimate (mean IPC ± confidence interval and the
    /// per-window samples); present only for [`run_workload_sampled`]
    /// runs. When set, `stats` holds the *summed* detailed-window
    /// statistics — cycles and commits across all measured stretches —
    /// not a whole-program simulation.
    pub sampled: Option<SampledEstimate>,
}

/// Simulates one workload under a named scheme, verifying the checksum.
///
/// # Errors
///
/// [`RunError::UnknownWorkload`] for a bad name and
/// [`RunError::ChecksumMismatch`] if timing altered semantics (never
/// expected; would indicate a simulator bug).
pub fn run_workload(
    name: &str,
    scale: Scale,
    width: MachineWidth,
    scheme: Scheme,
) -> Result<RunResult, RunError> {
    run_workload_observed(name, scale, width, scheme, false)
}

/// [`run_workload`] with the observability registry enabled when
/// `observe` is set: the result then carries [`RunResult::counters`].
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_workload_observed(
    name: &str,
    scale: Scale,
    width: MachineWidth,
    scheme: Scheme,
    observe: bool,
) -> Result<RunResult, RunError> {
    let w = workload(name, scale)
        .ok_or_else(|| RunError::UnknownWorkload { name: name.to_string() })?;
    run_prepared_observed(&w, scheme.configure(width), scheme, width, observe)
}

/// Simulates one workload in SMARTS-style sampled mode: functional
/// fast-forward with branch-table warming between short detailed windows
/// (see `hpa_sim::SampledRunner`). Orders of magnitude faster than
/// [`run_workload`] on long workloads; the IPC arrives as an estimate
/// with a confidence interval in [`RunResult::sampled`], and
/// [`RunResult::stats`] carries the summed measured-window statistics.
///
/// The workload checksum is verified on the runner's main emulator, which
/// functionally executes the complete program regardless of sampling —
/// sampled timing is approximate, sampled architecture is not.
///
/// # Errors
///
/// As [`run_workload`], plus [`RunError::Sim`] for a fault in any
/// detailed window.
pub fn run_workload_sampled(
    name: &str,
    scale: Scale,
    width: MachineWidth,
    scheme: Scheme,
    units: SampleUnits,
    seed: u64,
) -> Result<RunResult, RunError> {
    let w = workload(name, scale)
        .ok_or_else(|| RunError::UnknownWorkload { name: name.to_string() })?;
    let runner = SampledRunner::new(scheme.configure(width), units).with_seed(seed);
    let outcome =
        runner.run(&w.program).map_err(|fault| RunError::Sim { name: name.to_string(), fault })?;
    let actual = outcome.emulator.reg(CHECKSUM_REG);
    if actual != w.expected_checksum {
        return Err(RunError::ChecksumMismatch {
            name: w.name.to_string(),
            actual,
            expected: w.expected_checksum,
        });
    }
    let estimate = outcome.estimate;
    let stats = SimStats {
        committed: estimate.samples.iter().map(|s| s.committed).sum(),
        cycles: estimate.samples.iter().map(|s| s.cycles).sum(),
        ..SimStats::default()
    };
    Ok(RunResult {
        workload: w.name,
        scheme,
        width,
        stats,
        counters: None,
        sampled: Some(estimate),
    })
}

/// Simulates an already-built workload under an explicit configuration.
///
/// # Errors
///
/// [`RunError::ChecksumMismatch`] if timing altered semantics.
pub fn run_prepared(
    w: &Workload,
    config: SimConfig,
    scheme: Scheme,
    width: MachineWidth,
) -> Result<RunResult, RunError> {
    run_prepared_observed(w, config, scheme, width, false)
}

/// [`run_prepared`] with the observability registry enabled when
/// `observe` is set.
///
/// # Errors
///
/// As [`run_prepared`].
pub fn run_prepared_observed(
    w: &Workload,
    config: SimConfig,
    scheme: Scheme,
    width: MachineWidth,
    observe: bool,
) -> Result<RunResult, RunError> {
    let mut sim = Simulator::new(&w.program, config);
    if observe {
        sim.enable_counters();
    }
    sim.try_run().map_err(|fault| RunError::Sim { name: w.name.to_string(), fault })?;
    let actual = sim.emulator().reg(CHECKSUM_REG);
    if actual != w.expected_checksum {
        return Err(RunError::ChecksumMismatch {
            name: w.name.to_string(),
            actual,
            expected: w.expected_checksum,
        });
    }
    Ok(RunResult {
        workload: w.name,
        scheme,
        width,
        stats: sim.stats().clone(),
        counters: observe.then(|| sim.counters().clone()),
        sampled: None,
    })
}

/// [`run_prepared`] with per-phase wall-time accounting enabled: returns
/// the result plus the [`PhaseTimes`] accumulated over the run. Used by
/// the perf harness to attribute throughput changes to a phase; the
/// stopwatch reads slow the run, so the timed run is kept separate from
/// headline throughput measurements.
///
/// # Errors
///
/// As [`run_prepared`].
pub fn run_prepared_phase_timed(
    w: &Workload,
    config: SimConfig,
    scheme: Scheme,
    width: MachineWidth,
    observe: bool,
) -> Result<(RunResult, PhaseTimes), RunError> {
    let mut sim = Simulator::new(&w.program, config);
    if observe {
        sim.enable_counters();
    }
    sim.enable_phase_timing();
    sim.try_run().map_err(|fault| RunError::Sim { name: w.name.to_string(), fault })?;
    let actual = sim.emulator().reg(CHECKSUM_REG);
    if actual != w.expected_checksum {
        return Err(RunError::ChecksumMismatch {
            name: w.name.to_string(),
            actual,
            expected: w.expected_checksum,
        });
    }
    let times = *sim.phase_times().expect("phase timing was enabled");
    Ok((
        RunResult {
            workload: w.name,
            scheme,
            width,
            stats: sim.stats().clone(),
            counters: observe.then(|| sim.counters().clone()),
            sampled: None,
        },
        times,
    ))
}

/// Results of a benchmarks × schemes sweep at one machine width.
#[derive(Clone, PartialEq, Debug)]
pub struct MatrixResult {
    /// The machine width the matrix was collected at.
    pub width: MachineWidth,
    /// One row per workload, in [`hpa_workloads::WORKLOAD_NAMES`] order,
    /// each holding one result per requested scheme (same order as the
    /// `schemes` argument of [`run_matrix`]).
    pub rows: Vec<Vec<RunResult>>,
}

impl MatrixResult {
    /// The result for `(workload, scheme)`, if present.
    #[must_use]
    pub fn get(&self, workload: &str, scheme: Scheme) -> Option<&RunResult> {
        self.rows.iter().flatten().find(|r| r.workload == workload && r.scheme == scheme)
    }

    /// Normalized IPC (scheme / base) for one workload; requires both runs
    /// to be present.
    #[must_use]
    pub fn normalized_ipc(&self, workload: &str, scheme: Scheme) -> Option<f64> {
        let base = self.get(workload, Scheme::Base)?.stats.ipc();
        let s = self.get(workload, scheme)?.stats.ipc();
        (base > 0.0).then(|| s / base)
    }

    /// Average IPC degradation of a scheme across all workloads, as a
    /// fraction (e.g. `0.022` for the paper's headline 2.2%).
    #[must_use]
    pub fn average_degradation(&self, scheme: Scheme) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for row in &self.rows {
            if let Some(base) = row.iter().find(|r| r.scheme == Scheme::Base) {
                if let Some(s) = row.iter().find(|r| r.scheme == scheme) {
                    sum += 1.0 - s.stats.ipc() / base.stats.ipc();
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// The worst (largest) per-workload degradation of a scheme, with the
    /// workload name.
    #[must_use]
    pub fn worst_degradation(&self, scheme: Scheme) -> Option<(&'static str, f64)> {
        let mut worst: Option<(&'static str, f64)> = None;
        for row in &self.rows {
            let base = row.iter().find(|r| r.scheme == Scheme::Base)?;
            let s = row.iter().find(|r| r.scheme == scheme)?;
            let d = 1.0 - s.stats.ipc() / base.stats.ipc();
            if worst.is_none_or(|(_, w)| d > w) {
                worst = Some((s.workload, d));
            }
        }
        worst
    }
}

/// Runs `workload_names` × `schemes` at one width, calling `progress`
/// after each simulation (for harness logging).
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn run_matrix(
    workload_names: &[&str],
    scale: Scale,
    width: MachineWidth,
    schemes: &[Scheme],
    mut progress: impl FnMut(&RunResult),
) -> Result<MatrixResult, RunError> {
    let mut rows = Vec::with_capacity(workload_names.len());
    for name in workload_names {
        let w = workload(name, scale)
            .ok_or_else(|| RunError::UnknownWorkload { name: (*name).to_string() })?;
        let mut row = Vec::with_capacity(schemes.len());
        for &scheme in schemes {
            let r = run_prepared(&w, scheme.configure(width), scheme, width)?;
            progress(&r);
            row.push(r);
        }
        rows.push(row);
    }
    Ok(MatrixResult { width, rows })
}

/// Runs `workload_names` × `schemes` at one width with the independent
/// `(workload, scheme)` cells fanned out across `jobs` worker threads.
///
/// The result is bit-identical to [`run_matrix`]: each cell is a
/// self-contained single-threaded simulation, rows and columns keep the
/// input order, and on failure the error of the *first* failing cell (in
/// row-major order) is returned, regardless of completion order. The
/// `progress` callback fires from worker threads as cells complete, so
/// its call order is nondeterministic (pass `jobs = 1` for serial order).
///
/// # Errors
///
/// [`RunError::UnknownWorkload`] for a bad name (checked up front, in
/// order) and the row-major-first [`RunError`] of any failed cell.
pub fn run_matrix_parallel(
    workload_names: &[&str],
    scale: Scale,
    width: MachineWidth,
    schemes: &[Scheme],
    jobs: usize,
    progress: impl Fn(&RunResult) + Sync,
) -> Result<MatrixResult, RunError> {
    run_matrix_parallel_observed(workload_names, scale, width, schemes, jobs, false, progress)
}

/// [`run_matrix_parallel`] with the observability registry enabled when
/// `observe` is set: every cell then carries its [`RunResult::counters`]
/// (CPI stacks for the report layer). Observation never perturbs timing,
/// so the `stats` of an observed matrix are bit-identical to an
/// unobserved one.
///
/// # Errors
///
/// As [`run_matrix_parallel`].
pub fn run_matrix_parallel_observed(
    workload_names: &[&str],
    scale: Scale,
    width: MachineWidth,
    schemes: &[Scheme],
    jobs: usize,
    observe: bool,
    progress: impl Fn(&RunResult) + Sync,
) -> Result<MatrixResult, RunError> {
    let workloads = workload_names
        .iter()
        .map(|name| {
            workload(name, scale)
                .ok_or_else(|| RunError::UnknownWorkload { name: (*name).to_string() })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let cells: Vec<(usize, usize)> =
        (0..workloads.len()).flat_map(|wi| (0..schemes.len()).map(move |si| (wi, si))).collect();
    // Each cell runs panic-isolated: a panicking cell becomes a structured
    // `CellPanic` error instead of tearing down the whole sweep, and every
    // other cell still runs to completion.
    let results = parallel_map_isolated(&cells, jobs, |_, &(wi, si)| {
        let scheme = schemes[si];
        let r =
            run_prepared_observed(&workloads[wi], scheme.configure(width), scheme, width, observe);
        if let Ok(ref ok) = r {
            progress(ok);
        }
        r
    });
    let mut rows = Vec::with_capacity(workloads.len());
    let mut it = results.into_iter().zip(&cells);
    for _ in 0..workloads.len() {
        let row = it
            .by_ref()
            .take(schemes.len())
            .map(|(r, &(wi, si))| match r {
                Ok(cell) => cell,
                Err(e) => Err(RunError::CellPanic {
                    name: workloads[wi].name.to_string(),
                    scheme: schemes[si],
                    message: e.message,
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;
        rows.push(row);
    }
    Ok(MatrixResult { width, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_is_an_error() {
        let e = run_workload("nonesuch", Scale::Tiny, MachineWidth::Four, Scheme::Base);
        assert!(matches!(e, Err(RunError::UnknownWorkload { .. })));
        assert!(e.unwrap_err().to_string().contains("nonesuch"));
    }

    #[test]
    fn sampled_run_estimates_ipc_and_verifies_checksum() {
        let units = SampleUnits::parse("500:1000:4000").expect("valid units");
        let sampled =
            run_workload_sampled("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Base, units, 42)
                .expect("sampled run succeeds (checksum verified inside)");
        let estimate = sampled.sampled.as_ref().expect("sampled estimate present");
        assert!(estimate.mean_ipc > 0.0);
        assert!(!estimate.samples.is_empty());
        assert_eq!(
            sampled.stats.committed,
            estimate.samples.iter().map(|s| s.committed).sum::<u64>()
        );
        // Close to the full detailed run even at tiny scale.
        let full = run_workload("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Base).unwrap();
        let err = estimate.rel_error(full.stats.ipc());
        assert!(err < 0.15, "sampled IPC off by {:.1}% from full", err * 100.0);
        // Deterministic: same (workload, units, seed) -> identical result.
        let again =
            run_workload_sampled("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Base, units, 42)
                .unwrap();
        assert_eq!(sampled, again);
    }

    #[test]
    fn matrix_collects_and_normalizes() {
        let m = run_matrix(
            &["gcc"],
            Scale::Tiny,
            MachineWidth::Four,
            &[Scheme::Base, Scheme::Combined],
            |_| {},
        )
        .expect("runs");
        let norm = m.normalized_ipc("gcc", Scheme::Combined).expect("both runs present");
        assert!(norm > 0.85 && norm <= 1.01, "normalized IPC = {norm}");
        let avg = m.average_degradation(Scheme::Combined);
        let (wname, worst) = m.worst_degradation(Scheme::Combined).expect("present");
        assert_eq!(wname, "gcc");
        assert!((avg - worst).abs() < 1e-12, "single workload: avg == worst");
    }

    /// The tentpole determinism guarantee: the parallel matrix is
    /// bit-identical to the serial one — every `SimStats` counter, every
    /// row/column position — at both machine widths.
    #[test]
    fn parallel_matrix_is_bit_identical_to_serial() {
        let names = ["gcc", "mcf"];
        let schemes = [Scheme::Base, Scheme::Combined];
        for width in MachineWidth::ALL {
            let serial =
                run_matrix(&names, Scale::Tiny, width, &schemes, |_| {}).expect("serial runs");
            for jobs in [1, 3] {
                let par = run_matrix_parallel(&names, Scale::Tiny, width, &schemes, jobs, |_| {})
                    .expect("parallel runs");
                assert_eq!(serial, par, "jobs={jobs} width={width:?}");
            }
        }
    }

    /// Observation must be free: an observed matrix carries a balanced
    /// CPI stack per cell and exactly the same `SimStats` as an
    /// unobserved run.
    #[test]
    fn observed_matrix_balances_books_without_perturbing_stats() {
        let names = ["gcc"];
        let schemes = [Scheme::Base, Scheme::Combined];
        let plain =
            run_matrix(&names, Scale::Tiny, MachineWidth::Four, &schemes, |_| {}).expect("runs");
        let observed = run_matrix_parallel_observed(
            &names,
            Scale::Tiny,
            MachineWidth::Four,
            &schemes,
            2,
            true,
            |_| {},
        )
        .expect("runs");
        let width = u64::from(MachineWidth::Four.base_config().width);
        for (prow, orow) in plain.rows.iter().zip(&observed.rows) {
            for (p, o) in prow.iter().zip(orow) {
                assert_eq!(p.stats, o.stats, "observation perturbed timing");
                assert!(p.counters.is_none());
                let c = o.counters.as_ref().expect("observed cell has counters");
                assert_eq!(c.cpi.total(), o.stats.cycles * width, "books balance");
                if o.scheme == Scheme::Base {
                    assert_eq!(c.cpi.penalty_slots(), 0, "no penalties on the base machine");
                }
            }
        }
    }

    /// Error propagation is deterministic: the first failing cell in
    /// row-major order wins, regardless of completion order.
    #[test]
    fn parallel_matrix_propagates_unknown_workload() {
        let e = run_matrix_parallel(
            &["gcc", "nonesuch"],
            Scale::Tiny,
            MachineWidth::Four,
            &[Scheme::Base],
            4,
            |_| {},
        );
        assert!(matches!(e, Err(RunError::UnknownWorkload { .. })));
    }

    /// A panicking cell surfaces as a structured `CellPanic` naming the
    /// cell, while the sibling cells still run to completion.
    #[test]
    fn parallel_matrix_isolates_a_panicking_cell() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let e = run_matrix_parallel(
            &["gcc", "gzip"],
            Scale::Tiny,
            MachineWidth::Four,
            &[Scheme::Base, Scheme::Combined],
            2,
            |r| {
                assert!(
                    !(r.workload == "gzip" && r.scheme == Scheme::Combined),
                    "planted cell failure"
                );
                completed.fetch_add(1, Ordering::Relaxed);
            },
        );
        match e {
            Err(RunError::CellPanic { name, scheme, message }) => {
                assert_eq!(name, "gzip");
                assert_eq!(scheme, Scheme::Combined);
                assert!(message.contains("planted cell failure"), "message: {message}");
            }
            other => panic!("expected CellPanic, got {other:?}"),
        }
        assert_eq!(completed.load(Ordering::Relaxed), 3, "sibling cells all completed");
    }

    /// The progress callback fires exactly once per cell.
    #[test]
    fn parallel_progress_fires_per_cell() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let m = run_matrix_parallel(
            &["gcc", "gzip"],
            Scale::Tiny,
            MachineWidth::Four,
            &[Scheme::Base, Scheme::SeqRegAccess],
            2,
            |_| {
                count.fetch_add(1, Ordering::Relaxed);
            },
        )
        .expect("runs");
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(m.rows.len(), 2);
        assert!(m.rows.iter().all(|r| r.len() == 2));
    }
}
