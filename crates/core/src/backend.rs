//! The unified execution-backend abstraction.
//!
//! The workspace grew two machines that execute the same programs at
//! different fidelities: the functional [`Emulator`] (instruction-accurate,
//! tens of Minsts/s) and the cycle-level [`Simulator`] (timing-accurate,
//! a few Mcycles/s). Tiered simulation moves between them mid-program —
//! fast-forward functionally, checkpoint, continue in detail — so both
//! stand behind one [`Backend`] trait: advance, inspect architectural
//! state, checkpoint, restore. The sampled runner (`hpa_sim::SampledRunner`)
//! and the campaign/serve layers program against this surface instead of
//! either concrete machine.

use hpa_emu::{EmuError, Emulator, Snapshot};
use hpa_isa::{Inst, NUM_ARCH_REGS};
use hpa_sim::{SimFault, Simulator};

/// A backend failed to advance.
#[derive(Clone, Debug)]
pub enum BackendError {
    /// The functional machine raised a structured program error.
    Emu(EmuError),
    /// The timing machine faulted (deadlock watchdog, invariant, hook).
    Sim(Box<SimFault>),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Emu(e) => write!(f, "emulator: {e}"),
            BackendError::Sim(e) => write!(f, "simulator: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A backend-independent view of architectural state, cheap to capture
/// and compare. Register values use the unified [`hpa_isa::ArchReg`]
/// numbering (integer file then FP file as raw bits).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArchView {
    /// Program counter of the *functional* machine behind the backend.
    pub pc: u64,
    /// Whether the program has executed `halt`.
    pub halted: bool,
    /// Instructions functionally executed so far.
    pub executed: u64,
    /// All 64 architectural registers.
    pub regs: [u64; NUM_ARCH_REGS],
}

impl ArchView {
    fn capture(emu: &Emulator) -> ArchView {
        use hpa_isa::{ArchReg, FReg, Reg};
        let mut regs = [0u64; NUM_ARCH_REGS];
        for (i, slot) in regs.iter_mut().enumerate() {
            let name = if i < 32 {
                ArchReg::from(Reg::new(i as u8))
            } else {
                ArchReg::from(FReg::new((i - 32) as u8))
            };
            *slot = emu.arch_value(name);
        }
        ArchView { pc: emu.pc(), halted: emu.halted(), executed: emu.executed(), regs }
    }
}

/// One machine that can execute a loaded program: advance it, expose its
/// architectural state, and checkpoint/restore that state exactly.
///
/// The two implementations differ in what one [`Backend::step`] means —
/// an instruction for the emulator, a cycle for the simulator — but agree
/// on everything architectural, which is what makes snapshots portable
/// across fidelities: a [`Snapshot`] taken from either side seeds the
/// other, and the lockstep oracle in `hpa-verify` proves the commit
/// streams match.
pub trait Backend {
    /// Short human-readable backend name (diagnostics, reports).
    fn name(&self) -> &'static str;

    /// The instruction the machine would execute next on the committed
    /// path, if the PC currently points into the text segment.
    fn fetch(&self) -> Option<Inst>;

    /// Advances the machine by one unit of its own granularity (one
    /// instruction for the functional emulator, one cycle for the timing
    /// simulator). Returns `false` once the machine has nothing further
    /// to do.
    ///
    /// # Errors
    ///
    /// [`BackendError`] wrapping the machine's native fault type.
    fn step(&mut self) -> Result<bool, BackendError>;

    /// The current architectural state.
    fn arch_state(&self) -> ArchView;

    /// Checkpoints the complete architectural state.
    fn snapshot(&self) -> Snapshot;

    /// Resets this machine so execution continues from `snap` (keeping
    /// its loaded program and, for the simulator, its configuration).
    fn restore(&mut self, snap: &Snapshot);
}

impl Backend for Emulator {
    fn name(&self) -> &'static str {
        "emu"
    }

    fn fetch(&self) -> Option<Inst> {
        self.program().fetch(self.pc()).copied()
    }

    fn step(&mut self) -> Result<bool, BackendError> {
        match Emulator::step(self) {
            Ok(record) => Ok(record.is_some()),
            Err(e) => Err(BackendError::Emu(e)),
        }
    }

    fn arch_state(&self) -> ArchView {
        ArchView::capture(self)
    }

    fn snapshot(&self) -> Snapshot {
        Emulator::snapshot(self)
    }

    fn restore(&mut self, snap: &Snapshot) {
        Emulator::restore(self, snap);
    }
}

impl Backend for Simulator {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn fetch(&self) -> Option<Inst> {
        self.emulator().program().fetch(self.emulator().pc()).copied()
    }

    fn step(&mut self) -> Result<bool, BackendError> {
        if !self.active() {
            return Ok(false);
        }
        self.step_cycle();
        if let Some(fault) = self.fault() {
            return Err(BackendError::Sim(Box::new(fault.clone())));
        }
        Ok(self.active())
    }

    /// The simulator's architectural state is its fetch-front emulator,
    /// which runs *ahead* of commit (execution-driven simulation): the
    /// view is exact at quiesced points — before the first cycle and
    /// after the pipe drains — and speculative-but-correct-path between.
    fn arch_state(&self) -> ArchView {
        ArchView::capture(self.emulator())
    }

    fn snapshot(&self) -> Snapshot {
        self.emulator().snapshot()
    }

    fn restore(&mut self, snap: &Snapshot) {
        let program = self.emulator().program().clone();
        let config = self.config().clone();
        *self = Simulator::from_snapshot(&program, config, snap, hpa_sim::BranchWarmth::cold());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::Reg;
    use hpa_sim::SimConfig;

    fn program() -> hpa_asm::Program {
        let mut a = Asm::new();
        a.li(Reg::R1, 40);
        a.li(Reg::R2, 0);
        a.label("loop");
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.sub(Reg::R1, Reg::R1, 1);
        a.bgt(Reg::R1, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    /// Drives any backend to completion through the trait surface.
    fn drive(backend: &mut dyn Backend) -> ArchView {
        while backend.step().expect("no faults") {}
        backend.arch_state()
    }

    #[test]
    fn both_backends_reach_the_same_architectural_state() {
        let program = program();
        let mut emu = Emulator::new(&program);
        let mut sim = Simulator::new(&program, SimConfig::four_wide());
        let a = drive(&mut emu);
        let b = drive(&mut sim);
        assert_eq!(a.regs, b.regs, "timing never changes architecture");
        assert_eq!(a.pc, b.pc);
        assert!(a.halted && b.halted);
        assert_eq!(emu.name(), "emu");
        assert_eq!(sim.name(), "sim");
    }

    #[test]
    fn fetch_reads_the_committed_path() {
        let program = program();
        let emu = Emulator::new(&program);
        assert!(matches!(Backend::fetch(&emu), Some(Inst::Op { .. })), "li at pc 0");
        let sim = Simulator::new(&program, SimConfig::four_wide());
        assert_eq!(Backend::fetch(&emu), Backend::fetch(&sim));
    }

    #[test]
    fn snapshot_crosses_fidelities() {
        let program = program();
        // Fast-forward functionally, checkpoint through the trait…
        let mut emu = Emulator::new(&program);
        for _ in 0..20 {
            Backend::step(&mut emu).unwrap();
        }
        let snap = Backend::snapshot(&emu);
        // …and continue in detail from the checkpoint.
        let mut sim = Simulator::new(&program, SimConfig::four_wide());
        sim.restore(&snap);
        assert_eq!(sim.arch_state(), emu.arch_state());
        let finished = drive(&mut sim);
        // Reference: pure functional execution end to end.
        let mut reference = Emulator::new(&program);
        while Backend::step(&mut reference).unwrap() {}
        assert_eq!(finished.regs, reference.arch_state().regs);
        assert_eq!(finished.executed, reference.executed());
    }

    #[test]
    fn emulator_restore_rewinds() {
        let program = program();
        let mut emu = Emulator::new(&program);
        for _ in 0..10 {
            Backend::step(&mut emu).unwrap();
        }
        let snap = Backend::snapshot(&emu);
        let mid = emu.arch_state();
        while Backend::step(&mut emu).unwrap() {}
        assert_ne!(emu.arch_state(), mid);
        Backend::restore(&mut emu, &snap);
        assert_eq!(emu.arch_state(), mid);
    }
}
