//! A dependency-free scoped-thread job pool for embarrassingly parallel
//! experiment sweeps.
//!
//! This environment has no crates.io access, so instead of rayon the
//! experiment pipeline fans out over [`std::thread::scope`]: a shared
//! atomic cursor hands work items to `jobs` workers, and results land in
//! per-item slots so output order always matches input order regardless
//! of completion order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the host's available parallelism, or 1 if
/// it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Applies `f` to every item across `jobs` worker threads, returning
/// results in input order.
///
/// Work is handed out dynamically (an atomic cursor), so uneven item
/// costs balance across workers. With `jobs <= 1` or fewer than two
/// items the map runs inline on the caller's thread — no threads, no
/// synchronization, identical call order to a plain `iter().map()`.
///
/// # Panics
///
/// A panic inside `f` on any worker propagates to the caller when the
/// scope joins.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot").expect("every item visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 7, 200] {
            let out = parallel_map(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let none: Vec<u32> = parallel_map(&[], 8, |_, x: &u32| *x);
        assert!(none.is_empty());
        let one = parallel_map(&[41], 8, |_, x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn dynamic_distribution_covers_all_items_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(&items, 4, |_, &x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 57);
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
