//! A dependency-free scoped-thread job pool for embarrassingly parallel
//! experiment sweeps.
//!
//! This environment has no crates.io access, so instead of rayon the
//! experiment pipeline fans out over [`std::thread::scope`]: a shared
//! atomic cursor hands work items to `jobs` workers, and results land in
//! per-item slots so output order always matches input order regardless
//! of completion order.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job that panicked inside a [`parallel_map_isolated`] worker.
///
/// The panic is caught at the job boundary, so one failing item reports a
/// structured error instead of tearing down the whole map.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobError {
    /// Index of the input item whose job panicked.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// recovered verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobError {}

/// Renders a panic payload from [`catch_unwind`] as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The default worker count: the host's available parallelism, or 1 if
/// it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Applies `f` to every item across `jobs` worker threads, returning
/// results in input order.
///
/// Work is handed out dynamically (an atomic cursor), so uneven item
/// costs balance across workers. With `jobs <= 1` or fewer than two
/// items the map runs inline on the caller's thread — no threads, no
/// synchronization, identical call order to a plain `iter().map()`.
///
/// # Panics
///
/// A panic inside `f` on any worker propagates to the caller when the
/// scope joins.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot").expect("every item visited"))
        .collect()
}

/// Like [`parallel_map`], but each job runs under [`catch_unwind`]: a
/// panicking item yields `Err(JobError)` in its slot while every other
/// item still completes. Results stay in input order.
///
/// The closure must be effectively unwind-safe: jobs communicate only
/// through their return value, so a panicking job can at worst leave
/// torn state in values it exclusively owns (which are then discarded).
pub fn parallel_map_isolated<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, JobError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map(items, jobs, |i, t| {
        catch_unwind(AssertUnwindSafe(|| f(i, t)))
            .map_err(|payload| JobError { index: i, message: panic_message(payload) })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 7, 200] {
            let out = parallel_map(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let none: Vec<u32> = parallel_map(&[], 8, |_, x: &u32| *x);
        assert!(none.is_empty());
        let one = parallel_map(&[41], 8, |_, x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn dynamic_distribution_covers_all_items_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(&items, 4, |_, &x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 57);
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn isolated_map_reports_panics_without_killing_siblings() {
        let items: Vec<usize> = (0..40).collect();
        for jobs in [1, 3, 8] {
            let out = parallel_map_isolated(&items, jobs, |_, &x| {
                assert!(x != 17, "planted failure at item 17");
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 17 {
                    let e = r.as_ref().expect_err("item 17 panics");
                    assert_eq!(e.index, 17);
                    assert!(e.message.contains("planted failure"), "message: {}", e.message);
                } else {
                    assert_eq!(r.as_ref().copied().expect("healthy item"), i * 2);
                }
            }
        }
    }

    #[test]
    fn isolated_map_error_path_is_deterministic_across_job_counts() {
        let items: Vec<usize> = (0..30).collect();
        let run = |jobs| {
            parallel_map_isolated(&items, jobs, |_, &x| {
                assert!(x % 11 != 5, "item {x} fails");
                x + 1
            })
        };
        let reference = run(1);
        for jobs in [2, 4, 16] {
            assert_eq!(run(jobs), reference);
        }
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let out = parallel_map_isolated(&[0u32], 1, |_, _| -> u32 {
            std::panic::panic_any(42i32);
        });
        let e = out[0].as_ref().expect_err("payload panic");
        assert_eq!(e.message, "non-string panic payload");
    }
}
