//! Branch direction prediction, BTB and return-address stack.

/// Increments/decrements a 2-bit saturating counter.
fn bump(counter: &mut u8, up: bool) {
    if up {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

fn pc_index(pc: u64, entries: usize) -> usize {
    // Instructions are 4-byte aligned; drop the low bits before indexing.
    ((pc >> 2) as usize) & (entries - 1)
}

/// A table of 2-bit saturating counters predicting taken/not-taken, indexed
/// either by PC (bimodal) or by PC XOR global history (gshare).
#[derive(Clone, Debug)]
pub struct DirectionPredictor {
    table: Vec<u8>,
    history_bits: u32,
    history: u64,
}

impl DirectionPredictor {
    /// A PC-indexed bimodal predictor with `entries` counters
    /// (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn bimodal(entries: usize) -> DirectionPredictor {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        DirectionPredictor { table: vec![1; entries], history_bits: 0, history: 0 }
    }

    /// A gshare predictor with `entries` counters and
    /// `log2(entries)` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn gshare(entries: usize) -> DirectionPredictor {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        DirectionPredictor {
            table: vec![1; entries],
            history_bits: entries.trailing_zeros(),
            history: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = self.table.len() - 1;
        (pc_index(pc, self.table.len()) ^ (self.history as usize & mask)) & mask
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains on the resolved outcome and shifts the global history
    /// (no-op history shift for bimodal).
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        bump(&mut self.table[idx], taken);
        if self.history_bits > 0 {
            self.history = (self.history << 1) | u64::from(taken);
        }
    }
}

/// The Table 1 direction predictor: bimodal + gshare with a PC-indexed
/// selector choosing between them.
#[derive(Clone, Debug)]
pub struct CombinedPredictor {
    bimodal: DirectionPredictor,
    gshare: DirectionPredictor,
    selector: Vec<u8>,
}

impl CombinedPredictor {
    /// Builds the predictor with the given component table sizes.
    #[must_use]
    pub fn new(bimodal_entries: usize, gshare_entries: usize, selector_entries: usize) -> Self {
        assert!(selector_entries.is_power_of_two(), "table size must be a power of two");
        CombinedPredictor {
            bimodal: DirectionPredictor::bimodal(bimodal_entries),
            gshare: DirectionPredictor::gshare(gshare_entries),
            selector: vec![1; selector_entries],
        }
    }

    /// The paper's configuration: 4k bimodal / 4k gshare / 4k selector.
    #[must_use]
    pub fn table1() -> CombinedPredictor {
        CombinedPredictor::new(4096, 4096, 4096)
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        let use_gshare = self.selector[pc_index(pc, self.selector.len())] >= 2;
        if use_gshare {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    /// Trains both components; the selector trains toward whichever
    /// component was correct when they disagreed.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let b = self.bimodal.predict(pc);
        let g = self.gshare.predict(pc);
        if b != g {
            let idx = pc_index(pc, self.selector.len());
            bump(&mut self.selector[idx], g == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }
}

/// A set-associative branch target buffer with LRU replacement.
#[derive(Clone, Debug)]
pub struct Btb {
    ways: usize,
    entries: Vec<BtbEntry>,
    clock: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    pc: u64,
    target: u64,
    valid: bool,
    last_use: u64,
}

impl Btb {
    /// Builds a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power-of-two multiple of `ways`.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Btb {
        assert!(ways > 0 && entries.is_multiple_of(ways), "entries must divide into ways");
        assert!((entries / ways).is_power_of_two(), "set count must be a power of two");
        Btb { ways, entries: vec![BtbEntry::default(); entries], clock: 0 }
    }

    /// The paper's configuration: 1k entries, 4-way.
    #[must_use]
    pub fn table1() -> Btb {
        Btb::new(1024, 4)
    }

    fn set_range(&self, pc: u64) -> std::ops::Range<usize> {
        let sets = self.entries.len() / self.ways;
        let set = pc_index(pc, sets);
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up the predicted target for the branch at `pc`.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        self.entries[self.set_range(pc)].iter().find(|e| e.valid && e.pc == pc).map(|e| e.target)
    }

    /// Installs or refreshes the target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(pc);
        let set = &mut self.entries[range];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.pc == pc) {
            e.target = target;
            e.last_use = clock;
            return;
        }
        let victim =
            set.iter_mut().min_by_key(|e| if e.valid { e.last_use } else { 0 }).expect("ways > 0");
        *victim = BtbEntry { pc, target, valid: true, last_use: clock };
    }
}

/// A fixed-depth return-address stack. Pushing onto a full stack discards
/// the oldest entry (circular), as in real hardware.
#[derive(Clone, Debug)]
pub struct Ras {
    slots: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Ras {
    /// Builds a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras { slots: vec![0; capacity], top: 0, depth: 0 }
    }

    /// The paper's configuration: 16 entries.
    #[must_use]
    pub fn table1() -> Ras {
        Ras::new(16)
    }

    /// Pushes a return address (on calls).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = addr;
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pops the predicted return address (on returns).
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.slots[self.top];
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.depth -= 1;
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = DirectionPredictor::bimodal(16);
        for _ in 0..4 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        p.update(0x100, false);
        assert!(p.predict(0x100), "2-bit hysteresis survives one anomaly");
        p.update(0x100, false);
        assert!(!p.predict(0x100));
    }

    #[test]
    fn gshare_separates_by_history() {
        let mut p = DirectionPredictor::gshare(1024);
        // Alternating branch at one PC: T,N,T,N... bimodal would flounder;
        // gshare keys on history and converges.
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            if p.predict(0x40) == taken {
                correct += 1;
            }
            p.update(0x40, taken);
        }
        assert!(correct > 150, "gshare should learn the alternation, got {correct}");
    }

    #[test]
    fn combined_beats_wrong_component() {
        let mut c = CombinedPredictor::new(64, 64, 64);
        // Strongly biased branch: both components work; selector stays sane.
        for _ in 0..8 {
            c.update(0x10, true);
        }
        assert!(c.predict(0x10));
        // Alternating branch: selector should drift to gshare.
        let mut correct = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            if c.predict(0x20) == taken {
                correct += 1;
            }
            c.update(0x20, taken);
        }
        assert!(correct > 300, "combined should track alternation, got {correct}");
    }

    #[test]
    fn btb_stores_and_replaces() {
        let mut btb = Btb::new(8, 2); // 4 sets x 2 ways
        assert_eq!(btb.lookup(0x100), None);
        btb.update(0x100, 0x500);
        assert_eq!(btb.lookup(0x100), Some(0x500));
        btb.update(0x100, 0x600);
        assert_eq!(btb.lookup(0x100), Some(0x600));
        // Fill the set (PCs mapping to the same set: step by 4*sets = 16).
        btb.update(0x110, 0x700);
        btb.update(0x120, 0x800); // evicts LRU 0x100
        assert_eq!(btb.lookup(0x100), None);
        assert_eq!(btb.lookup(0x110), Some(0x700));
        assert_eq!(btb.lookup(0x120), Some(0x800));
    }

    #[test]
    fn ras_is_lifo_and_bounded() {
        let mut ras = Ras::new(2);
        assert_eq!(ras.pop(), None);
        ras.push(1);
        ras.push(2);
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);

        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites oldest; depth stays capped at 2
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "entry 1 was lost to the overflow");
    }
}
