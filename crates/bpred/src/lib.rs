//! # hpa-bpred — predictors for the Half-Price Architecture study
//!
//! Two families of predictors:
//!
//! * **Branch prediction** per the paper's Table 1: a combined
//!   bimodal(4k)/gshare(4k) predictor with a 4k-entry selector, a 1k-entry
//!   4-way [`Btb`], and a 16-entry return-address stack ([`Ras`]).
//! * **Last-arriving operand prediction** (paper §3.2): a PC-indexed,
//!   direct-mapped bimodal table of 2-bit saturating counters that predicts
//!   which of a 2-source instruction's operands will wake up last. Sequential
//!   wakeup places the predicted operand on the fast wakeup bus; tag
//!   elimination watches only that operand. [`LastArrivalBank`] runs several
//!   table sizes side by side to regenerate the paper's Figure 7 sweep.
//!
//! # Example
//!
//! ```
//! use hpa_bpred::{LastArrivalPredictor, Side};
//!
//! let mut p = LastArrivalPredictor::new(1024);
//! // A static instruction whose right operand keeps arriving last trains
//! // the predictor within two observations.
//! p.update(0x40, Side::Right);
//! p.update(0x40, Side::Right);
//! assert_eq!(p.predict(0x40), Side::Right);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod last_arrival;
mod pc_table;

pub use branch::{Btb, CombinedPredictor, DirectionPredictor, Ras};
pub use last_arrival::{LastArrivalBank, LastArrivalPredictor, LastArrivalStats, Side};
pub use pc_table::PcTable;
