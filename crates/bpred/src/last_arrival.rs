//! The last-arriving operand predictor (paper §3.2, Figure 7).

use crate::pc_table::PcTable;

/// Which of a 2-source instruction's operands is meant: the left (`ra`) or
/// right (`rb`) source in format order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// The left operand (`ra`/`fa`).
    Left,
    /// The right operand (`rb`/`fb`).
    Right,
}

impl Side {
    /// The opposite side.
    #[must_use]
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A PC-indexed, direct-mapped bimodal predictor of which operand arrives
/// last, built from 2-bit saturating counters exactly like a bimodal branch
/// predictor (the design the paper selects in §3.2 after comparing it with
/// more sophisticated alternatives).
///
/// Counter values 0–1 predict [`Side::Left`], 2–3 predict [`Side::Right`];
/// the counter initializes to 2 so an untrained entry predicts `Right`,
/// matching the paper's static fallback configuration.
#[derive(Clone, Debug)]
pub struct LastArrivalPredictor {
    table: PcTable<u8>,
}

impl LastArrivalPredictor {
    /// Builds a predictor with `entries` counters (power of two; the paper
    /// sweeps 128–4096 and evaluates with 1024).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> LastArrivalPredictor {
        LastArrivalPredictor { table: PcTable::new(entries, 2) }
    }

    /// Number of table entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.table.entries()
    }

    /// Predicts which operand of the instruction at `pc` wakes up last.
    #[must_use]
    pub fn predict(&self, pc: u64) -> Side {
        if *self.table.get(pc) >= 2 {
            Side::Right
        } else {
            Side::Left
        }
    }

    /// Trains on the observed last-arriving side. Simultaneous wakeups do
    /// not call this (there is no meaningful "last" to train toward).
    pub fn update(&mut self, pc: u64, actual: Side) {
        let c = self.table.get_mut(pc);
        match actual {
            Side::Right => *c = (*c + 1).min(3),
            Side::Left => *c = c.saturating_sub(1),
        }
    }
}

/// Accuracy counters for one predictor in a [`LastArrivalBank`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LastArrivalStats {
    /// Predictions where the predicted side actually arrived last.
    pub correct: u64,
    /// Predictions where the other side arrived last.
    pub incorrect: u64,
    /// Cases where both operands woke in the same cycle (reported
    /// separately in Figure 7 — whether they count as hits depends on the
    /// consuming wakeup scheme).
    pub simultaneous: u64,
}

impl LastArrivalStats {
    /// Total observed 2-pending-source wakeup pairs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.correct + self.incorrect + self.simultaneous
    }

    /// Accuracy over non-simultaneous cases, in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let decided = self.correct + self.incorrect;
        if decided == 0 {
            0.0
        } else {
            self.correct as f64 / decided as f64
        }
    }
}

/// A bank of last-arrival predictors of different sizes trained on the same
/// stream, regenerating the paper's Figure 7 table-size sweep from a single
/// simulation run.
#[derive(Clone, Debug)]
pub struct LastArrivalBank {
    predictors: Vec<(LastArrivalPredictor, LastArrivalStats)>,
}

impl LastArrivalBank {
    /// Builds a bank with one predictor per table size.
    #[must_use]
    pub fn new(sizes: &[usize]) -> LastArrivalBank {
        LastArrivalBank {
            predictors: sizes
                .iter()
                .map(|&s| (LastArrivalPredictor::new(s), LastArrivalStats::default()))
                .collect(),
        }
    }

    /// The paper's Figure 7 sweep: 128, 512, 1024 and 4096 entries.
    #[must_use]
    pub fn figure7() -> LastArrivalBank {
        LastArrivalBank::new(&[128, 512, 1024, 4096])
    }

    /// Observes one completed 2-pending-source wakeup pair: the side that
    /// actually arrived last, or `None` for a simultaneous wakeup. Scores
    /// every predictor's prediction, then trains it.
    pub fn observe(&mut self, pc: u64, actual_last: Option<Side>) {
        for (p, stats) in &mut self.predictors {
            match actual_last {
                None => stats.simultaneous += 1,
                Some(actual) => {
                    if p.predict(pc) == actual {
                        stats.correct += 1;
                    } else {
                        stats.incorrect += 1;
                    }
                    p.update(pc, actual);
                }
            }
        }
    }

    /// `(table size, stats)` for each predictor in the bank.
    #[must_use]
    pub fn results(&self) -> Vec<(usize, LastArrivalStats)> {
        self.predictors.iter().map(|(p, s)| (p.entries(), *s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_and_predict() {
        let mut p = LastArrivalPredictor::new(8);
        assert_eq!(p.predict(0), Side::Right, "initial bias is Right");
        p.update(0, Side::Left);
        assert_eq!(p.predict(0), Side::Left);
        p.update(0, Side::Left);
        p.update(0, Side::Left); // saturates at 0
        p.update(0, Side::Right);
        assert_eq!(p.predict(0), Side::Left, "hysteresis survives one flip");
        p.update(0, Side::Right);
        assert_eq!(p.predict(0), Side::Right);
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = LastArrivalPredictor::new(8);
        p.update(0x00, Side::Left);
        p.update(0x00, Side::Left);
        assert_eq!(p.predict(0x00), Side::Left);
        assert_eq!(p.predict(0x04), Side::Right, "neighbor entry untouched");
    }

    #[test]
    fn aliasing_in_small_tables() {
        let mut p = LastArrivalPredictor::new(2);
        // PCs 0x00 and 0x08 collide in a 2-entry table ((pc>>2) & 1).
        p.update(0x00, Side::Left);
        p.update(0x00, Side::Left);
        assert_eq!(p.predict(0x08), Side::Left, "aliased entry shares state");
    }

    #[test]
    fn bank_scores_before_training() {
        let mut bank = LastArrivalBank::new(&[128, 4096]);
        // First observation at a fresh PC: initial prediction is Right, so
        // observing Left scores a miss everywhere.
        bank.observe(0x40, Some(Side::Left));
        bank.observe(0x40, Some(Side::Left));
        bank.observe(0x40, None);
        for (size, stats) in bank.results() {
            assert_eq!(stats.incorrect, 1, "size {size}");
            assert_eq!(stats.correct, 1, "size {size}: trained after first miss");
            assert_eq!(stats.simultaneous, 1);
            assert_eq!(stats.total(), 3);
            assert_eq!(stats.accuracy(), 0.5);
        }
    }

    #[test]
    fn side_other() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
    }
}
