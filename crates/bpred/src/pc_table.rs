//! A direct-mapped, PC-indexed hardware table.
//!
//! Every PC-keyed predictor structure in the machine — the last-arriving
//! predictor, the 21264-style stWait bits, the wakeup-order history —
//! indexes the same way real hardware does: drop the byte-offset bits and
//! mask with a power-of-two table size. [`PcTable`] centralizes that
//! indexing so the simulator never reaches for a `HashMap` on a per-cycle
//! path (hashing plus possible rehash allocation) where a silicon
//! structure would be a direct RAM lookup.
//!
//! Aliasing is intentional: two PCs that collide share an entry, exactly
//! like the modeled hardware.

/// A power-of-two direct-mapped table indexed by instruction address.
#[derive(Clone, Debug)]
pub struct PcTable<T> {
    table: Vec<T>,
}

impl<T: Clone> PcTable<T> {
    /// Builds a table of `entries` copies of `init`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, init: T) -> PcTable<T> {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        PcTable { table: vec![init; entries] }
    }
}

impl<T> PcTable<T> {
    /// Number of entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// The entry index for `pc`: word-aligned address bits, masked.
    #[must_use]
    pub fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// The entry `pc` maps to.
    #[must_use]
    pub fn get(&self, pc: u64) -> &T {
        &self.table[self.index(pc)]
    }

    /// Mutable access to the entry `pc` maps to.
    pub fn get_mut(&mut self, pc: u64) -> &mut T {
        let idx = self.index(pc);
        &mut self.table[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_granular_direct_mapping() {
        let mut t: PcTable<u32> = PcTable::new(8, 0);
        *t.get_mut(0x40) = 7;
        assert_eq!(*t.get(0x40), 7);
        assert_eq!(*t.get(0x44), 0, "neighbor word is a distinct entry");
        assert_eq!(*t.get(0x40 + 8 * 4), 7, "one table span away aliases");
        assert_eq!(t.entries(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        let _ = PcTable::new(6, 0u8);
    }
}
