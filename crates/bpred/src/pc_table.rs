//! A direct-mapped, PC-indexed hardware table.
//!
//! Every PC-keyed predictor structure in the machine — the last-arriving
//! predictor, the 21264-style stWait bits, the wakeup-order history —
//! indexes the same way real hardware does: drop the byte-offset bits and
//! mask with a power-of-two table size. [`PcTable`] centralizes that
//! indexing so the simulator never reaches for a `HashMap` on a per-cycle
//! path (hashing plus possible rehash allocation) where a silicon
//! structure would be a direct RAM lookup.
//!
//! Aliasing is intentional: two PCs that collide share an entry, exactly
//! like the modeled hardware.

/// A power-of-two direct-mapped table indexed by instruction address.
#[derive(Clone, Debug)]
pub struct PcTable<T> {
    table: Vec<T>,
}

impl<T: Clone> PcTable<T> {
    /// Builds a table of `entries` copies of `init`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, init: T) -> PcTable<T> {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        PcTable { table: vec![init; entries] }
    }
}

impl<T> PcTable<T> {
    /// Number of entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// The entry index for `pc`: word-aligned address bits, masked.
    #[must_use]
    pub fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// The entry `pc` maps to.
    #[must_use]
    pub fn get(&self, pc: u64) -> &T {
        &self.table[self.index(pc)]
    }

    /// Mutable access to the entry `pc` maps to.
    pub fn get_mut(&mut self, pc: u64) -> &mut T {
        let idx = self.index(pc);
        &mut self.table[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_granular_direct_mapping() {
        let mut t: PcTable<u32> = PcTable::new(8, 0);
        *t.get_mut(0x40) = 7;
        assert_eq!(*t.get(0x40), 7);
        assert_eq!(*t.get(0x44), 0, "neighbor word is a distinct entry");
        assert_eq!(*t.get(0x40 + 8 * 4), 7, "one table span away aliases");
        assert_eq!(t.entries(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        let _ = PcTable::new(6, 0u8);
    }

    /// Adversarial stride stream: every PC exactly one table span apart
    /// lands on the same entry, and each write evicts the previous
    /// occupant (direct-mapped, no victim storage).
    #[test]
    fn strided_stream_aliases_and_evicts() {
        let entries = 64usize;
        let span = (entries as u64) * 4;
        let mut t: PcTable<u64> = PcTable::new(entries, u64::MAX);
        let base = 0x1000u64;
        for k in 0..100u64 {
            let pc = base + k * span;
            assert_eq!(t.index(pc), t.index(base), "stride {k} must alias");
            *t.get_mut(pc) = k;
            // The latest writer owns the entry — earlier values are gone.
            assert_eq!(*t.get(base), k);
        }
        // Every other entry was never touched.
        let untouched = (0..entries as u64)
            .map(|i| i * 4)
            .filter(|&pc| t.index(pc) != t.index(base))
            .map(|pc| *t.get(pc))
            .collect::<Vec<_>>();
        assert_eq!(untouched.len(), entries - 1);
        assert!(untouched.iter().all(|&v| v == u64::MAX));
    }

    /// One span of word-aligned PCs covers each entry exactly once, in
    /// any visit order — the index function is a bijection over a span.
    #[test]
    fn scrambled_span_covers_every_entry_once() {
        let entries = 32usize;
        let t: PcTable<u8> = PcTable::new(entries, 0);
        // A maximal-period LCG-style scramble of the 32 word slots.
        let mut seen = vec![0u32; entries];
        let mut slot = 0u64;
        for _ in 0..entries {
            slot = (slot * 5 + 17) % entries as u64;
            seen[t.index(0x4000 + slot * 4)] += 1;
        }
        assert!(seen.iter().all(|&n| n == 1), "coverage: {seen:?}");
    }

    /// Byte-offset bits never split an entry: all four byte addresses of
    /// one instruction word share it, and PCs in the far upper address
    /// space alias exactly like nearby ones.
    #[test]
    fn byte_offsets_and_high_bits_fold_away() {
        let mut t: PcTable<u32> = PcTable::new(16, 0);
        *t.get_mut(0x88) = 9;
        for off in 1..4 {
            assert_eq!(*t.get(0x88 + off), 9, "byte offset {off}");
        }
        let span = 16u64 * 4;
        for pc in [0x88 + span * 1000, 0x88 + (u64::MAX / span) / 2 * span] {
            assert_eq!(t.index(pc), t.index(0x88), "pc {pc:#x} must fold onto 0x88");
        }
    }
}
