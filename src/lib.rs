//! # half-price — reproduction of *Half-Price Architecture* (ISCA 2003)
//!
//! This crate is the front door of the workspace: it re-exports
//! [`hpa_core`], whose crate docs describe the full experiment API. See the
//! repository `README.md` for a tour, `DESIGN.md` for the system inventory
//! and per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! ```
//! use half_price::{run_workload, MachineWidth, Scheme};
//! use half_price::workloads::Scale;
//!
//! # fn main() -> Result<(), half_price::RunError> {
//! let r = run_workload("bzip", Scale::Tiny, MachineWidth::Four, Scheme::Combined)?;
//! println!("bzip under the half-price architecture: {:.2} IPC", r.stats.ipc());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpa_core::*;
pub use hpa_faultsim as faultsim;
pub use hpa_sdk as sdk;
pub use hpa_serve as serve;
pub use hpa_verify as verify;
