//! `hpa` — command-line front end for the Half-Price Architecture
//! reproduction: assemble, emulate and simulate programs, run the
//! built-in benchmarks, and serve simulations over HTTP (see the
//! [`COMMANDS`] table for the full registry, which is also what `hpa`
//! with no/unknown arguments prints).
//!
//! Exit codes: `0` success, `1` operational error (I/O, bad input file),
//! `2` usage error, `3` a fault/divergence was detected, `4` silent data
//! corruption (SDC) was detected.

use half_price::asm::parse_program;
use half_price::emu::Emulator;
use half_price::faultsim;
use half_price::isa::Reg;
use half_price::obs::digest::debug_digest;
use half_price::sdk::{Client, ClientError};
use half_price::serve::proto::{JobProgram, JobRequest, JobStatus};
use half_price::serve::server::{Server, ServerConfig};
use half_price::sim::{SampleUnits, SampledEstimate, SampledRunner, SimStats, Simulator};
use half_price::verify;
use half_price::workloads::{workload, Scale, WORKLOAD_NAMES};
use half_price::{MachineWidth, Scheme};
use std::process::ExitCode;
use std::time::Duration;

/// One CLI subcommand: the single place a command's name, one-line help
/// and usage synopsis are registered. `main` dispatches from this table
/// and the global usage text is generated from it, so adding a command
/// is one entry here plus its handler.
struct Subcommand {
    /// The verb (`hpa <name> ...`).
    name: &'static str,
    /// One-line description for the command listing.
    help: &'static str,
    /// Usage synopsis (flags included).
    usage: &'static str,
    /// The handler, taking the arguments after the verb.
    run: fn(&[String]) -> CliResult,
}

/// The subcommand registry.
const COMMANDS: &[Subcommand] = &[
    Subcommand { name: "list", help: "workloads and schemes", usage: "hpa list", run: cmd_list },
    Subcommand {
        name: "asm",
        help: "assemble + disassemble a program",
        usage: "hpa asm <file.s>",
        run: cmd_asm,
    },
    Subcommand {
        name: "run",
        help: "functional execution, dump registers",
        usage: "hpa run <file.s|file.elf> [--insts N] [--sampled W:D:F [--seed S]]",
        run: cmd_run,
    },
    Subcommand {
        name: "sim",
        help: "cycle-level simulation of one program",
        usage: "hpa sim <file.s> [--scheme S] [--width 4|8] [--trace N] [--cpi-stack] \
                [--counters] [--json] [--sampled W:D:F [--seed S]]",
        run: cmd_sim,
    },
    Subcommand {
        name: "bench",
        help: "built-in benchmarks (sweep with `all`)",
        usage: "hpa bench <name|all> [--scheme S|all] [--scale tiny|default|large|long] \
                [--width 4|8] [--jobs N] [--sampled W:D:F [--seed S]]",
        run: cmd_bench,
    },
    Subcommand {
        name: "counters",
        help: "cycle-accounting report",
        usage: "hpa counters <file.s|bench> [--scheme S] [--width 4|8] [--scale K] [--json]",
        run: cmd_counters,
    },
    Subcommand {
        name: "trace-viz",
        help: "Chrome trace-event JSON export",
        usage: "hpa trace-viz <file.s> [--scheme S] [--width 4|8] [--insts N] [--out FILE]",
        run: cmd_trace_viz,
    },
    Subcommand {
        name: "verify",
        help: "lockstep-check a program or replay a corpus",
        usage: "hpa verify <file.s|file.elf|dir> [--scheme S|all] [--width 4|8]",
        run: cmd_verify,
    },
    Subcommand {
        name: "fuzz",
        help: "differential fuzzing campaign",
        usage: "hpa fuzz [--iters N] [--seed S] [--jobs N] [--corpus DIR] [--sampled]",
        run: cmd_fuzz,
    },
    Subcommand {
        name: "faults",
        help: "fault-injection campaign",
        usage: "hpa faults [--campaign SPEC] [--seed S] [--jobs N] [--out FILE] [--corpus DIR]",
        run: cmd_faults,
    },
    Subcommand {
        name: "serve",
        help: "simulation-as-a-service daemon (or --stop one)",
        usage: "hpa serve [--addr HOST:PORT] [--jobs N] [--cache-dir DIR] [--journal-dir DIR] \
                [--max-queue N] [--cache-max-entries N] [--cache-max-bytes N] [--stop]",
        run: cmd_serve,
    },
    Subcommand {
        name: "submit",
        help: "submit a job to a running daemon",
        usage:
            "hpa submit <bench|file.s|file.elf> [--addr HOST:PORT] [--scheme S|all] [--scale K] \
                [--width 4|8] [--seed N] [--sampled W:D:F] [--deadline-ms N] [--wait-secs N] \
                [--cycle-budget N] [--no-wait] [--json]",
        run: cmd_submit,
    },
    Subcommand {
        name: "job",
        help: "fetch (and wait for) a submitted job's results",
        usage: "hpa job <id> [--addr HOST:PORT] [--wait-secs N] [--json]",
        run: cmd_job,
    },
];

fn usage_error(unknown: Option<&str>) -> CliError {
    use std::fmt::Write as _;
    let mut msg = String::new();
    if let Some(name) = unknown {
        let _ = writeln!(msg, "unknown command `{name}`");
    }
    let verbs: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
    let _ = write!(msg, "usage: hpa <{}> ...", verbs.join("|"));
    for c in COMMANDS {
        let _ = write!(msg, "\n\n  {:10} {}\n             {}", c.name, c.help, c.usage);
    }
    CliError::Usage(msg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some(name) => match COMMANDS.iter().find(|c| c.name == name) {
            Some(cmd) => (cmd.run)(&args[1..]),
            None => Err(usage_error(Some(name))),
        },
        None => Err(usage_error(None)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.code())
        }
    }
}

/// A structured CLI failure; the variant picks the process exit code.
#[derive(Debug)]
enum CliError {
    /// Bad flags or arguments (exit 2).
    Usage(String),
    /// A fault or divergence was detected by the verification layers
    /// (exit 3).
    Fault(String),
    /// Silent data corruption was detected (exit 4).
    Sdc(String),
    /// Operational failure: I/O, unparsable input file, emulator fault
    /// (exit 1).
    Other(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Fault(_) => 3,
            CliError::Sdc(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Fault(m) | CliError::Sdc(m) | CliError::Other(m) => {
                write!(f, "{m}")
            }
        }
    }
}

type CliResult = Result<(), CliError>;

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn other(msg: impl std::fmt::Display) -> CliError {
    CliError::Other(msg.to_string())
}

fn cmd_list(_args: &[String]) -> CliResult {
    println!("workloads (SPEC CINT2000 stand-ins):");
    for name in WORKLOAD_NAMES {
        let w = workload(name, Scale::Tiny).expect("known");
        println!("  {name:8} {}", w.description);
    }
    println!("\nworkloads (real RISC-V binaries, scale-invariant):");
    for name in half_price::workloads::RISCV_WORKLOAD_NAMES {
        let w = workload(name, Scale::Tiny).expect("known");
        println!("  {name:12} {}", w.description);
    }
    println!("\nschemes:");
    for s in Scheme::ALL {
        println!("  {:22} (--scheme {})", s.label(), s.key());
    }
    Ok(())
}

fn parse_scheme(key: &str) -> Result<Scheme, CliError> {
    Scheme::from_key(key).ok_or_else(|| usage(format!("unknown scheme `{key}`; see `hpa list`")))
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Flags that take no value, so the positional-argument scan must not
/// treat their successor as a flag value.
const BOOL_FLAGS: [&str; 5] = ["--cpi-stack", "--counters", "--json", "--stop", "--no-wait"];

fn bool_flag(args: &[String], name: &str) -> bool {
    debug_assert!(BOOL_FLAGS.contains(&name));
    args.iter().any(|a| a == name)
}

/// Parses the value of `--name` as an integer, with a usage error naming
/// the flag on failure; `default` when the flag is absent.
fn num_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, CliError> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| usage(format!("bad {name} `{v}` (want an integer)"))),
    }
}

fn jobs_flag(args: &[String]) -> Result<usize, CliError> {
    let jobs = num_flag(args, "--jobs", half_price::default_jobs())?;
    if jobs == 0 {
        return Err(usage("bad --jobs `0` (want an integer >= 1)"));
    }
    Ok(jobs)
}

/// Parses `--scale`, defaulting to [`Scale::Default`].
fn scale_flag(args: &[String]) -> Result<Scale, CliError> {
    match flag(args, "--scale") {
        None => Ok(Scale::Default),
        Some(v) => Scale::from_key(&v).ok_or_else(|| usage(format!("bad --scale {v}"))),
    }
}

fn load_program(args: &[String]) -> Result<half_price::asm::Program, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| usage("missing program file argument"))?;
    let bytes = std::fs::read(path).map_err(|e| other(format_args!("{path}: {e}")))?;
    // Real RISC-V binaries go through the hpa-rv frontend; anything else
    // is internal assembly text.
    if bytes.starts_with(b"\x7fELF") {
        let image =
            half_price::rv::load_elf(&bytes).map_err(|e| other(format_args!("{path}: {e}")))?;
        return half_price::rv::translate(&image).map_err(|e| other(format_args!("{path}: {e}")));
    }
    let source = String::from_utf8(bytes)
        .map_err(|e| other(format_args!("{path}: not an ELF and not UTF-8 assembly: {e}")))?;
    parse_program(&source).map_err(|e| other(format_args!("{path}: {e}")))
}

fn cmd_asm(args: &[String]) -> CliResult {
    let program = load_program(args)?;
    print!("{program}");
    println!("; {} instructions, {} bytes encoded", program.len(), program.len() * 4);
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let program = load_program(args)?;
    // `--sampled W:D:F` switches from functional execution to the sampled
    // simulator — the quick way to get timing out of a real binary.
    if let Some((units, seed)) = sampled_flag(args)? {
        let scheme = parse_scheme(&flag(args, "--scheme").unwrap_or_else(|| "base".into()))?;
        let width = machine_width(args)?;
        let runner = SampledRunner::new(scheme.configure(width), units).with_seed(seed);
        let out = runner.run(&program).map_err(|e| CliError::Fault(e.to_string()))?;
        println!(
            "{} on the {} machine (sampled {units}, seed {seed}):",
            scheme.label(),
            width.label()
        );
        print_sampled(&out.estimate);
        return Ok(());
    }
    let budget: u64 = num_flag(args, "--insts", 100_000_000)?;
    let mut emu = Emulator::new(&program);
    let outcome = emu.run(budget).map_err(other)?;
    println!("{outcome:?}");
    for r in 0..32 {
        let v = emu.reg(Reg::new(r));
        if v != 0 {
            println!("  r{r:<2} = {v:#x} ({v})");
        }
    }
    Ok(())
}

fn machine_width(args: &[String]) -> Result<MachineWidth, CliError> {
    match flag(args, "--width").as_deref() {
        None | Some("4") => Ok(MachineWidth::Four),
        Some("8") => Ok(MachineWidth::Eight),
        Some(o) => Err(usage(format!("bad --width {o}"))),
    }
}

fn print_stats(s: &SimStats) {
    println!("cycles            {:>12}", s.cycles);
    println!("committed         {:>12}", s.committed);
    println!("IPC               {:>12.3}", s.ipc());
    println!("branch mispredict {:>11.2}%", s.mispredict_rate() * 100.0);
    println!("DL1 miss rate     {:>11.2}%", s.hierarchy.dl1.miss_rate() * 100.0);
    println!("load-miss replays {:>12}", s.load_miss_replays);
    println!("replayed insts    {:>12}", s.replayed_insts);
    println!("avg RUU occupancy {:>12.1}", s.avg_window_occupancy());
    let issue_dist: Vec<String> = s
        .issue_histogram
        .iter()
        .map(|n| format!("{:.0}%", *n as f64 / s.cycles.max(1) as f64 * 100.0))
        .collect();
    println!("issue width dist  {:>12}", issue_dist.join("/"));
    if s.seq_rf_accesses + s.seq_wakeup_slow_last + s.simultaneous_wakeups + s.te_misfires > 0 {
        println!("half-price events:");
        println!("  seq RF accesses      {:>9}", s.seq_rf_accesses);
        println!("  slow-side arrivals   {:>9}", s.seq_wakeup_slow_last);
        println!("  simultaneous wakeups {:>9}", s.simultaneous_wakeups);
        println!("  TE misfires          {:>9}", s.te_misfires);
    }
    // The same digest the serve payloads carry, so a direct run and a
    // daemon result can be compared by grepping one line each.
    println!("stats digest      {}", half_price::serve::proto::format_hex(debug_digest(s)));
}

/// Parses `--sampled W:D:F` (plus the optional `--seed`); `None` when the
/// flag is absent.
fn sampled_flag(args: &[String]) -> Result<Option<(SampleUnits, u64)>, CliError> {
    match flag(args, "--sampled") {
        None => Ok(None),
        Some(v) => {
            let units = SampleUnits::parse(&v).map_err(usage)?;
            let seed: u64 = num_flag(args, "--seed", 0)?;
            Ok(Some((units, seed)))
        }
    }
}

/// Prints a sampled-mode estimate; the `mean IPC` line is the greppable
/// contract the accuracy gate in `tools/check.sh` relies on.
fn print_sampled(est: &SampledEstimate) {
    println!("samples           {:>12}", est.samples.len());
    println!("mean IPC          {:>12.3} ± {:.3} (95% CI)", est.mean_ipc, est.ci_half_width);
    println!(
        "detailed insts    {:>12} ({:.2}% of {} executed)",
        est.detailed_insts,
        est.detail_fraction() * 100.0,
        est.total_insts
    );
}

fn cmd_sim(args: &[String]) -> CliResult {
    let program = load_program(args)?;
    let scheme = parse_scheme(&flag(args, "--scheme").unwrap_or_else(|| "base".into()))?;
    let width = machine_width(args)?;
    let want_cpi = bool_flag(args, "--cpi-stack");
    let want_counters = bool_flag(args, "--counters");
    if let Some((units, seed)) = sampled_flag(args)? {
        if want_cpi || want_counters || bool_flag(args, "--json") {
            return Err(usage("--sampled is incompatible with --json/--cpi-stack/--counters"));
        }
        if num_flag::<usize>(args, "--trace", 0)? > 0 {
            return Err(usage("--sampled is incompatible with --trace"));
        }
        let runner = SampledRunner::new(scheme.configure(width), units).with_seed(seed);
        let out = runner.run(&program).map_err(|e| CliError::Fault(e.to_string()))?;
        println!(
            "{} on the {} machine (sampled {units}, seed {seed}):",
            scheme.label(),
            width.label()
        );
        print_sampled(&out.estimate);
        return Ok(());
    }
    let mut sim = Simulator::new(&program, scheme.configure(width));
    let trace: usize = num_flag(args, "--trace", 0)?;
    if trace > 0 {
        sim.enable_trace(trace);
    }
    if want_cpi || want_counters {
        sim.enable_counters();
    }
    sim.run();
    if bool_flag(args, "--json") {
        println!("{}", sim.stats().to_json());
        return Ok(());
    }
    println!("{} on the {} machine:", scheme.label(), width.label());
    print_stats(sim.stats());
    if want_cpi {
        println!("\n{}", render_cpi_stack(sim.counters(), sim.stats()));
    }
    if want_counters {
        println!("\n{}", sim.counters());
    }
    if let Some(t) = sim.pipetrace() {
        println!("\npipeline diagram (first {trace} committed instructions):");
        print!("{}", t.render());
    }
    Ok(())
}

/// Renders the CPI stack as a per-category table: issue slots charged,
/// percentage of `cycles x width`, and CPI contribution.
fn render_cpi_stack(c: &half_price::Counters, stats: &SimStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("CPI stack (every issue slot of every cycle charged once):\n");
    let committed = stats.committed.max(1) as f64;
    for cat in half_price::CpiCategory::ALL {
        let slots = c.cpi.get(cat);
        if slots == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:14} {:>12} slots {:>6.2}% {:>8.4} CPI",
            cat.key(),
            slots,
            100.0 * c.cpi.fraction(cat),
            slots as f64 / committed
        );
    }
    let _ = write!(
        out,
        "  {:14} {:>12} slots (= {} cycles x width)",
        "total",
        c.cpi.total(),
        stats.cycles
    );
    out
}

/// Cycle-accounting report for a program file or built-in benchmark:
/// CPI stack plus the counter registry, human-readable or `--json`.
fn cmd_counters(args: &[String]) -> CliResult {
    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| usage("missing program file or benchmark name; see `hpa list`"))?;
    let scheme = parse_scheme(&flag(args, "--scheme").unwrap_or_else(|| "base".into()))?;
    let width = machine_width(args)?;

    let (counters, stats) = if std::path::Path::new(target).is_file() {
        let program = load_program(args)?;
        let mut sim = Simulator::new(&program, scheme.configure(width));
        sim.enable_counters();
        sim.run();
        (sim.counters().clone(), sim.stats().clone())
    } else {
        let scale = scale_flag(args)?;
        let r = half_price::run_workload_observed(target, scale, width, scheme, true)
            .map_err(|e| usage(format!("`{target}` is neither a file nor a benchmark: {e}")))?;
        (r.counters.expect("observed run records counters"), r.stats)
    };

    if bool_flag(args, "--json") {
        println!("{}", counters.to_json());
        return Ok(());
    }
    println!("`{target}` under {} on the {} machine:", scheme.label(), width.label());
    println!("{}", render_cpi_stack(&counters, &stats));
    println!("\n{counters}");
    Ok(())
}

/// Exports per-instruction lifetime spans (fetch -> dispatch -> wakeup ->
/// select -> exec -> commit) as Chrome trace-event JSON; open the file at
/// `chrome://tracing` or <https://ui.perfetto.dev>.
fn cmd_trace_viz(args: &[String]) -> CliResult {
    let program = load_program(args)?;
    let scheme = parse_scheme(&flag(args, "--scheme").unwrap_or_else(|| "base".into()))?;
    let width = machine_width(args)?;
    let insts: usize = num_flag(args, "--insts", 4096)?;
    if insts == 0 {
        return Err(usage("bad --insts `0` (want an integer >= 1)"));
    }
    let out = flag(args, "--out").unwrap_or_else(|| "trace.json".into());
    let config = scheme.configure(width);
    let frontend_depth = config.frontend_depth;
    let mut sim = Simulator::new(&program, config);
    sim.enable_trace(insts);
    sim.run();
    let trace = sim.pipetrace().expect("trace was enabled");
    let spans = trace.chrome_spans(frontend_depth);
    std::fs::write(&out, half_price::obs::chrome::render(&spans))
        .map_err(|e| other(format_args!("writing {out}: {e}")))?;
    println!(
        "wrote {} span(s) to {out} ({} committed, {} cycles under {})",
        spans.len(),
        sim.stats().committed,
        sim.stats().cycles,
        scheme.label()
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let name = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| usage("missing benchmark name; see `hpa list`"))?;
    let scale = scale_flag(args)?;
    let width = machine_width(args)?;
    let jobs = jobs_flag(args)?;
    let scheme_key = flag(args, "--scheme").unwrap_or_else(|| "base".into());
    let names: Vec<&str> =
        if name == "all" { WORKLOAD_NAMES.to_vec() } else { vec![name.as_str()] };
    if let Some((units, seed)) = sampled_flag(args)? {
        if scheme_key == "all" {
            return Err(usage("--sampled runs one scheme at a time; pick --scheme S"));
        }
        let scheme = parse_scheme(&scheme_key)?;
        for bench in &names {
            let r = half_price::run_workload_sampled(bench, scale, width, scheme, units, seed)
                .map_err(other)?;
            let est = r.sampled.expect("sampled run records an estimate");
            println!(
                "`{bench}` under {} on the {} machine (sampled {units}, seed {seed}):",
                scheme.label(),
                width.label()
            );
            print_sampled(&est);
        }
        return Ok(());
    }
    if scheme_key == "all" {
        return bench_matrix(&names, scale, width, jobs);
    }
    let scheme = parse_scheme(&scheme_key)?;
    if names.len() > 1 {
        return bench_matrix_schemes(&names, scale, width, &[scheme], jobs);
    }
    let r = half_price::run_workload(name, scale, width, scheme).map_err(other)?;
    println!("`{name}` under {} on the {} machine:", scheme.label(), width.label());
    print_stats(&r.stats);
    Ok(())
}

/// Checks a program (or a whole corpus directory) against the lockstep
/// oracle. A single file runs either one scheme (`--scheme S`) or the full
/// differential set; a directory replays every `.s` reproducer in it.
fn cmd_verify(args: &[String]) -> CliResult {
    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| usage("missing file or directory; usage: hpa verify <file.s|dir>"))?;
    let path = std::path::Path::new(target);

    if path.is_dir() {
        let report = verify::replay_dir(path).map_err(other)?;
        for (file, scheme, d) in &report.failures {
            eprintln!("FAIL {} under `{}`:\n{d}", file.display(), scheme.key());
        }
        if !report.failures.is_empty() {
            return Err(CliError::Fault(format!(
                "{} of {} corpus case(s) diverged",
                report.failures.len(),
                report.cases
            )));
        }
        println!("corpus clean: {} case(s) replayed from {target}", report.cases);
        return Ok(());
    }

    // ELF binaries go through the hpa-rv frontend (no corpus header);
    // corpus `.s` cases keep their recorded scheme/width.
    let is_elf = std::fs::read(path).is_ok_and(|b| b.starts_with(b"\x7fELF"));
    let case = if is_elf {
        verify::CorpusCase {
            path: path.to_path_buf(),
            program: load_program(args)?,
            scheme: None,
            width: MachineWidth::Four,
        }
    } else {
        verify::load_case(path).map_err(other)?
    };
    let width = if flag(args, "--width").is_some() { machine_width(args)? } else { case.width };
    let variant = verify::Variant { width, selective_recovery: false, small_pc_table: false };
    match flag(args, "--scheme").as_deref() {
        None | Some("all") => {
            verify::run_differential(&case.program, variant).map_err(|(scheme, d)| {
                CliError::Fault(format!("{target} diverged under `{}`:\n{d}", scheme.key()))
            })?;
            println!(
                "{target}: {} scheme(s) agree in lockstep on the {} machine",
                verify::FUZZ_SCHEMES.len(),
                width.label()
            );
        }
        Some(key) => {
            let scheme = parse_scheme(key)?;
            let out = verify::run_lockstep(&case.program, variant.configure(scheme))
                .map_err(|d| CliError::Fault(format!("{target} diverged under `{key}`:\n{d}")))?;
            println!(
                "{target}: lockstep clean under {} ({} committed, {} cycles)",
                scheme.label(),
                out.committed,
                out.cycles
            );
        }
    }
    Ok(())
}

/// Runs a differential fuzzing campaign; shrunk reproducers for any
/// divergence land in the corpus directory (default `tests/corpus`).
fn cmd_fuzz(args: &[String]) -> CliResult {
    let mut cfg = verify::FuzzConfig::default();
    cfg.iters = num_flag(args, "--iters", cfg.iters)?;
    cfg.seed = num_flag(args, "--seed", cfg.seed)?;
    cfg.jobs = jobs_flag(args)?;
    // `--sampled` takes no value here: it switches the differential check
    // to the tiered variant (snapshot windows + sampled runner replay).
    cfg.sampled = args.iter().any(|a| a == "--sampled");
    let corpus = flag(args, "--corpus").unwrap_or_else(|| "tests/corpus".into());
    cfg.corpus_dir = Some(corpus.clone().into());

    let t0 = std::time::Instant::now();
    let report = verify::fuzz(&cfg);
    println!(
        "fuzz{}: {} program(s), {} lockstep run(s), seed {}, {} job(s), {:.1}s",
        if cfg.sampled { " (sampled)" } else { "" },
        report.iters,
        report.runs,
        cfg.seed,
        cfg.jobs,
        t0.elapsed().as_secs_f64()
    );
    if report.failures.is_empty() {
        println!("no divergences");
        return Ok(());
    }
    for f in &report.failures {
        eprintln!(
            "FAIL iteration {} under `{}` ({} machine):\n{}",
            f.index,
            f.scheme.key(),
            f.variant.width.label(),
            f.divergence
        );
        if let Some(p) = &f.reproducer {
            eprintln!("  reproducer written to {}", p.display());
        }
    }
    Err(CliError::Fault(format!(
        "{} divergence(s); reproducers in {corpus}",
        report.failures.len()
    )))
}

/// Runs a fault-injection campaign: seeded faults in the scheduler's
/// internal structures, each run classified Detected / Masked / SDC via
/// the lockstep oracle, with a resilience report written as JSON.
fn cmd_faults(args: &[String]) -> CliResult {
    let spec_str = flag(args, "--campaign").unwrap_or_else(|| "mini".into());
    let seed: u64 = num_flag(args, "--seed", 42)?;
    let mut spec = faultsim::CampaignSpec::parse(&spec_str, seed).map_err(usage)?;
    spec.jobs = jobs_flag(args)?;
    let corpus = flag(args, "--corpus").unwrap_or_else(|| "tests/corpus".into());
    spec.corpus_dir = Some(corpus.clone().into());
    let out_path = flag(args, "--out").unwrap_or_else(|| "RESILIENCE.json".into());

    let t0 = std::time::Instant::now();
    let report = faultsim::run_campaign(&spec);
    print!("{}", report.table());
    println!(
        "\ncampaign `{spec_str}`: {} run(s), {} job(s), {:.1}s",
        report.cells.len(),
        spec.jobs,
        t0.elapsed().as_secs_f64()
    );
    std::fs::write(&out_path, report.json())
        .map_err(|e| other(format_args!("writing {out_path}: {e}")))?;
    println!("resilience report written to {out_path}");

    if report.sdc() > 0 {
        return Err(CliError::Sdc(format!(
            "{} run(s) ended in silent data corruption; shrunk reproducer(s) in {corpus}",
            report.sdc()
        )));
    }
    if !report.aborted.is_empty() {
        return Err(CliError::Fault(format!(
            "{} campaign cell(s) failed every attempt (see job errors above)",
            report.aborted.len()
        )));
    }
    Ok(())
}

/// Whether `a` is the value of a preceding `--flag` (so the benchmark-name
/// scan skips e.g. the `4` of `--jobs 4`).
fn is_flag_value(args: &[String], a: &String) -> bool {
    args.iter()
        .position(|x| std::ptr::eq(x, a))
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .is_some_and(|prev| prev.starts_with("--") && !BOOL_FLAGS.contains(&prev.as_str()))
}

/// Sweeps `names` × all schemes and prints an IPC table (base-normalized).
fn bench_matrix(names: &[&str], scale: Scale, width: MachineWidth, jobs: usize) -> CliResult {
    bench_matrix_schemes(names, scale, width, &Scheme::ALL, jobs)
}

fn bench_matrix_schemes(
    names: &[&str],
    scale: Scale,
    width: MachineWidth,
    schemes: &[Scheme],
    jobs: usize,
) -> CliResult {
    let t0 = std::time::Instant::now();
    let m = half_price::run_matrix_parallel(names, scale, width, schemes, jobs, |r| {
        eprintln!("  {} / {}: ipc {:.3}", r.workload, r.scheme.label(), r.stats.ipc());
    })
    .map_err(other)?;
    println!(
        "{} benchmark(s) x {} scheme(s) on the {} machine ({jobs} job(s), {:.1}s):",
        names.len(),
        schemes.len(),
        width.label(),
        t0.elapsed().as_secs_f64()
    );
    let col = schemes.iter().map(|&s| s.key().len()).max().unwrap_or(0).max(8);
    print!("{:10}", "bench");
    for &s in schemes {
        print!(" {:>col$}", s.key());
    }
    println!();
    for row in &m.rows {
        print!("{:10}", row.first().map_or("-", |r| r.workload));
        for r in row {
            print!(" {:>col$.3}", r.stats.ipc());
        }
        println!();
    }
    if schemes.contains(&Scheme::Base) {
        for &s in schemes {
            if s == Scheme::Base {
                continue;
            }
            println!("{}: average degradation {:.1}%", s.label(), m.average_degradation(s) * 100.0);
        }
    }
    Ok(())
}

/// Runs the simulation-as-a-service daemon (or, with `--stop`, asks a
/// running one to shut down gracefully). Blocks until drained.
fn cmd_serve(args: &[String]) -> CliResult {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".into());
    if bool_flag(args, "--stop") {
        Client::new(addr.clone()).shutdown().map_err(other)?;
        println!("shutdown requested; {addr} is draining");
        return Ok(());
    }
    let workers = num_flag(args, "--jobs", half_price::default_jobs().min(4))?;
    if workers == 0 {
        return Err(usage("bad --jobs `0` (want an integer >= 1)"));
    }
    let cache_dir = flag(args, "--cache-dir").map(std::path::PathBuf::from);
    let cache_desc =
        cache_dir.as_ref().map_or_else(|| "memory only".to_string(), |d| d.display().to_string());
    let journal_dir = flag(args, "--journal-dir").map(std::path::PathBuf::from);
    let max_queue = match flag(args, "--max-queue") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| usage(format!("bad --max-queue `{v}` (want an integer >= 1)")))?,
        ),
    };
    let cache_max_entries = match flag(args, "--cache-max-entries") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| usage(format!("bad --cache-max-entries `{v}` (want an integer)")))?,
        ),
    };
    let cache_max_bytes = match flag(args, "--cache-max-bytes") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| usage(format!("bad --cache-max-bytes `{v}` (want an integer)")))?,
        ),
    };
    let server = Server::bind(ServerConfig {
        addr,
        workers,
        cache_dir,
        journal_dir,
        max_queue,
        cache_max_entries,
        cache_max_bytes,
    })
    .map_err(other)?;
    let local = server.local_addr().map_err(other)?;
    // The `listening on` line is the contract `tools/check.sh` parses to
    // discover the bound port; keep it first and stable.
    println!("hpa serve listening on {local} ({workers} worker(s), cache: {cache_desc})");
    if let Some(summary) = server.replay_summary() {
        println!("{summary}");
    }
    server.run().map_err(other)
}

/// Maps a client-side failure onto the CLI exit-code scheme: rejected
/// requests are usage errors, everything else is operational.
fn client_err(e: ClientError) -> CliError {
    match e {
        ClientError::Server { status: 400, message, .. } => usage(message),
        e => other(e),
    }
}

/// Submits one job to a running daemon and waits for its results.
fn cmd_submit(args: &[String]) -> CliResult {
    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| usage("missing benchmark name or program file; see `hpa list`"))?;
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".into());
    let scheme_key = flag(args, "--scheme").unwrap_or_else(|| "base".into());
    let schemes =
        if scheme_key == "all" { Scheme::ALL.to_vec() } else { vec![parse_scheme(&scheme_key)?] };
    let scale = scale_flag(args)?;
    let program = if std::path::Path::new(target).is_file() {
        let bytes = std::fs::read(target).map_err(|e| other(format_args!("{target}: {e}")))?;
        if bytes.starts_with(b"\x7fELF") {
            // Load + translate locally first so a bad binary surfaces
            // with the usual message instead of a daemon-side 400; the
            // daemon re-translates the raw bytes itself.
            let image = half_price::rv::load_elf(&bytes)
                .map_err(|e| other(format_args!("{target}: {e}")))?;
            half_price::rv::translate(&image).map_err(|e| other(format_args!("{target}: {e}")))?;
            JobProgram::Binary(bytes)
        } else {
            let source = String::from_utf8(bytes)
                .map_err(|e| other(format_args!("{target}: not an ELF and not UTF-8: {e}")))?;
            // Assemble locally first so syntax errors surface with the
            // usual message instead of a daemon-side 400.
            parse_program(&source).map_err(|e| other(format_args!("{target}: {e}")))?;
            JobProgram::Source(source)
        }
    } else {
        JobProgram::Workload { name: target.clone(), scale }
    };
    let sampled = match flag(args, "--sampled") {
        None => None,
        Some(v) => Some(SampleUnits::parse(&v).map_err(usage)?),
    };
    let request = JobRequest {
        program,
        width: machine_width(args)?,
        schemes,
        seed: num_flag(args, "--seed", 0)?,
        sampled,
        deadline_ms: match flag(args, "--deadline-ms") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| usage(format!("bad --deadline-ms `{v}` (want an integer)")))?,
            ),
        },
        cycle_budget: num_flag(
            args,
            "--cycle-budget",
            half_price::serve::proto::DEFAULT_CYCLE_BUDGET,
        )?,
        pc_table_entries: None,
    };

    let client = Client::new(addr);
    let submit = client.submit(&request).map_err(client_err)?;
    if bool_flag(args, "--no-wait") && !submit.status.is_terminal() {
        // Fire-and-forget: print the submit receipt; `hpa job <id>`
        // collects the results later (even across a daemon restart,
        // with a journal).
        if bool_flag(args, "--json") {
            println!("{}", submit.to_json());
        } else {
            println!("job {} {} (cached: {})", submit.job_id, submit.status.key(), submit.cached);
        }
        return Ok(());
    }
    let result = if submit.status.is_terminal() {
        client.result(submit.job_id).map_err(client_err)?
    } else {
        let timeout = Duration::from_secs(num_flag(args, "--wait-secs", 600)?);
        client.wait(submit.job_id, timeout).map_err(client_err)?
    };
    report_result(result, bool_flag(args, "--json"))
}

/// Fetches one job's results from a running daemon, waiting for a
/// terminal state first.
fn cmd_job(args: &[String]) -> CliResult {
    let id: u64 = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| usage("missing job id; see `hpa submit`"))?
        .parse()
        .map_err(|_| usage("bad job id (want an integer)"))?;
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".into());
    let client = Client::new(addr);
    let timeout = Duration::from_secs(num_flag(args, "--wait-secs", 600)?);
    let result = client.wait(id, timeout).map_err(client_err)?;
    report_result(result, bool_flag(args, "--json"))
}

/// Prints a terminal job result and maps its status onto the exit-code
/// scheme (shared by `hpa submit` and `hpa job`). Cell headings name the
/// workload from the payload itself, so the caller needs no context.
fn report_result(result: half_price::serve::proto::ResultResponse, json: bool) -> CliResult {
    if json {
        println!("{}", result.to_json());
    } else {
        println!("job {} {} (cached: {})", result.job_id, result.status.key(), result.cached);
        for cell in &result.cells {
            let scheme = cell.scheme;
            let target = cell
                .payload()
                .and_then(|p| p.get("workload").and_then(|w| w.as_str().map(str::to_string)))
                .unwrap_or_else(|| "source".to_string());
            println!("`{target}` under {} (cached: {}):", scheme.label(), cell.cached);
            if let Some(p) = cell.payload() {
                if let Some(ipc) = cell.ipc() {
                    println!("  ipc               {ipc:>12.3}");
                }
                for field in ["cycles", "committed"] {
                    if let Some(v) = p.get(field).and_then(half_price::obs::json::Json::as_u64) {
                        println!("  {field:<17} {v:>12}");
                    }
                }
                if let Some(d) = p.get("stats_digest").and_then(half_price::obs::json::Json::as_str)
                {
                    println!("  stats digest    {d:>14}");
                }
            }
        }
    }
    match result.status {
        JobStatus::Done => Ok(()),
        JobStatus::Failed => {
            Err(CliError::Fault(result.error.unwrap_or_else(|| "job failed".to_string())))
        }
        JobStatus::Expired => Err(other(format_args!(
            "job {} expired: {}",
            result.job_id,
            result.error.as_deref().unwrap_or("deadline passed while queued")
        ))),
        s => Err(other(format_args!("job {} still {}", result.job_id, s.key()))),
    }
}
