//! `hpa` — command-line front end for the Half-Price Architecture
//! reproduction: assemble, emulate and simulate programs, and run the
//! built-in benchmarks.
//!
//! ```text
//! hpa list                               # workloads and schemes
//! hpa asm prog.s                         # assemble + disassemble
//! hpa run prog.s [--insts N]             # functional execution, dump registers
//! hpa sim prog.s [--scheme S] [--width W] [--trace N]  # cycle-level simulation
//! hpa bench mcf [--scheme S] [--scale T] # one built-in benchmark
//! hpa bench all --scheme all [--jobs N]  # full sweep, parallel cells
//! hpa verify prog.s [--scheme S]         # lockstep-check one program
//! hpa verify tests/corpus                # replay a reproducer corpus
//! hpa fuzz [--iters N] [--seed S]        # differential fuzzing campaign
//! ```

use half_price::asm::parse_program;
use half_price::emu::Emulator;
use half_price::isa::Reg;
use half_price::sim::{SimStats, Simulator};
use half_price::verify;
use half_price::workloads::{workload, Scale, WORKLOAD_NAMES};
use half_price::{MachineWidth, Scheme};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("asm") => cmd_asm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        _ => {
            eprintln!(
                "usage: hpa <list|asm|run|sim|bench|verify|fuzz> ...\n\
                 \n  hpa list\n  hpa asm <file.s>\n  hpa run <file.s> [--insts N]\n  \
                 hpa sim <file.s> [--scheme S] [--width 4|8]\n  \
                 hpa bench <name|all> [--scheme S|all] [--scale tiny|default|large] \
                 [--width 4|8] [--jobs N]\n  \
                 hpa verify <file.s|dir> [--scheme S|all] [--width 4|8]\n  \
                 hpa fuzz [--iters N] [--seed S] [--jobs N] [--corpus DIR]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn list() -> CliResult {
    println!("workloads (SPEC CINT2000 stand-ins):");
    for name in WORKLOAD_NAMES {
        let w = workload(name, Scale::Tiny).expect("known");
        println!("  {name:8} {}", w.description);
    }
    println!("\nschemes:");
    for s in Scheme::ALL {
        println!("  {:22} (--scheme {})", s.label(), s.key());
    }
    Ok(())
}

fn parse_scheme(key: &str) -> Result<Scheme, String> {
    Scheme::from_key(key).ok_or_else(|| format!("unknown scheme `{key}`; see `hpa list`"))
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn load_program(args: &[String]) -> Result<half_price::asm::Program, Box<dyn std::error::Error>> {
    let path = args.iter().find(|a| !a.starts_with("--")).ok_or("missing program file argument")?;
    let source = std::fs::read_to_string(path)?;
    Ok(parse_program(&source)?)
}

fn cmd_asm(args: &[String]) -> CliResult {
    let program = load_program(args)?;
    print!("{program}");
    println!("; {} instructions, {} bytes encoded", program.len(), program.len() * 4);
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let program = load_program(args)?;
    let budget: u64 = match flag(args, "--insts") {
        Some(v) => v.parse()?,
        None => 100_000_000,
    };
    let mut emu = Emulator::new(&program);
    let outcome = emu.run(budget)?;
    println!("{outcome:?}");
    for r in 0..32 {
        let v = emu.reg(Reg::new(r));
        if v != 0 {
            println!("  r{r:<2} = {v:#x} ({v})");
        }
    }
    Ok(())
}

fn machine_width(args: &[String]) -> Result<MachineWidth, String> {
    match flag(args, "--width").as_deref() {
        None | Some("4") => Ok(MachineWidth::Four),
        Some("8") => Ok(MachineWidth::Eight),
        Some(other) => Err(format!("bad --width {other}")),
    }
}

fn print_stats(s: &SimStats) {
    println!("cycles            {:>12}", s.cycles);
    println!("committed         {:>12}", s.committed);
    println!("IPC               {:>12.3}", s.ipc());
    println!("branch mispredict {:>11.2}%", s.mispredict_rate() * 100.0);
    println!("DL1 miss rate     {:>11.2}%", s.hierarchy.dl1.miss_rate() * 100.0);
    println!("load-miss replays {:>12}", s.load_miss_replays);
    println!("replayed insts    {:>12}", s.replayed_insts);
    println!("avg RUU occupancy {:>12.1}", s.avg_window_occupancy());
    let issue_dist: Vec<String> = s
        .issue_histogram
        .iter()
        .map(|n| format!("{:.0}%", *n as f64 / s.cycles.max(1) as f64 * 100.0))
        .collect();
    println!("issue width dist  {:>12}", issue_dist.join("/"));
    if s.seq_rf_accesses + s.seq_wakeup_slow_last + s.simultaneous_wakeups + s.te_misfires > 0 {
        println!("half-price events:");
        println!("  seq RF accesses      {:>9}", s.seq_rf_accesses);
        println!("  slow-side arrivals   {:>9}", s.seq_wakeup_slow_last);
        println!("  simultaneous wakeups {:>9}", s.simultaneous_wakeups);
        println!("  TE misfires          {:>9}", s.te_misfires);
    }
}

fn cmd_sim(args: &[String]) -> CliResult {
    let program = load_program(args)?;
    let scheme = parse_scheme(&flag(args, "--scheme").unwrap_or_else(|| "base".into()))?;
    let width = machine_width(args)?;
    let mut sim = Simulator::new(&program, scheme.configure(width));
    let trace: usize = match flag(args, "--trace") {
        Some(v) => v.parse()?,
        None => 0,
    };
    if trace > 0 {
        sim.enable_trace(trace);
    }
    sim.run();
    println!("{} on the {} machine:", scheme.label(), width.label());
    print_stats(sim.stats());
    if let Some(t) = sim.pipetrace() {
        println!("\npipeline diagram (first {trace} committed instructions):");
        print!("{}", t.render());
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let name = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or("missing benchmark name; see `hpa list`")?;
    let scale = match flag(args, "--scale").as_deref() {
        Some("tiny") => Scale::Tiny,
        None | Some("default") => Scale::Default,
        Some("large") => Scale::Large,
        Some(other) => return Err(format!("bad --scale {other}").into()),
    };
    let width = machine_width(args)?;
    let jobs: usize = match flag(args, "--jobs") {
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --jobs `{v}` (want an integer >= 1)").into()),
        },
        None => half_price::default_jobs(),
    };
    let scheme_key = flag(args, "--scheme").unwrap_or_else(|| "base".into());
    let names: Vec<&str> =
        if name == "all" { WORKLOAD_NAMES.to_vec() } else { vec![name.as_str()] };
    if scheme_key == "all" {
        return bench_matrix(&names, scale, width, jobs);
    }
    let scheme = parse_scheme(&scheme_key)?;
    if names.len() > 1 {
        return bench_matrix_schemes(&names, scale, width, &[scheme], jobs);
    }
    let r = half_price::run_workload(name, scale, width, scheme)?;
    println!("`{name}` under {} on the {} machine:", scheme.label(), width.label());
    print_stats(&r.stats);
    Ok(())
}

/// Checks a program (or a whole corpus directory) against the lockstep
/// oracle. A single file runs either one scheme (`--scheme S`) or the full
/// differential set; a directory replays every `.s` reproducer in it.
fn cmd_verify(args: &[String]) -> CliResult {
    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or("missing file or directory; usage: hpa verify <file.s|dir>")?;
    let path = std::path::Path::new(target);

    if path.is_dir() {
        let report = verify::replay_dir(path)?;
        for (file, scheme, d) in &report.failures {
            eprintln!("FAIL {} under `{}`:\n{d}", file.display(), scheme.key());
        }
        if !report.failures.is_empty() {
            return Err(format!(
                "{} of {} corpus case(s) diverged",
                report.failures.len(),
                report.cases
            )
            .into());
        }
        println!("corpus clean: {} case(s) replayed from {target}", report.cases);
        return Ok(());
    }

    let case = verify::load_case(path)?;
    let width = if flag(args, "--width").is_some() { machine_width(args)? } else { case.width };
    let variant = verify::Variant { width, selective_recovery: false, small_pc_table: false };
    match flag(args, "--scheme").as_deref() {
        None | Some("all") => {
            verify::run_differential(&case.program, variant).map_err(|(scheme, d)| {
                format!("{target} diverged under `{}`:\n{d}", scheme.key())
            })?;
            println!(
                "{target}: {} scheme(s) agree in lockstep on the {} machine",
                verify::FUZZ_SCHEMES.len(),
                width.label()
            );
        }
        Some(key) => {
            let scheme = parse_scheme(key)?;
            let out = verify::run_lockstep(&case.program, variant.configure(scheme))
                .map_err(|d| format!("{target} diverged under `{key}`:\n{d}"))?;
            println!(
                "{target}: lockstep clean under {} ({} committed, {} cycles)",
                scheme.label(),
                out.committed,
                out.cycles
            );
        }
    }
    Ok(())
}

/// Runs a differential fuzzing campaign; shrunk reproducers for any
/// divergence land in the corpus directory (default `tests/corpus`).
fn cmd_fuzz(args: &[String]) -> CliResult {
    let mut cfg = verify::FuzzConfig::default();
    if let Some(v) = flag(args, "--iters") {
        cfg.iters = v.parse()?;
    }
    if let Some(v) = flag(args, "--seed") {
        cfg.seed = v.parse()?;
    }
    if let Some(v) = flag(args, "--jobs") {
        cfg.jobs = match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --jobs `{v}` (want an integer >= 1)").into()),
        };
    }
    let corpus = flag(args, "--corpus").unwrap_or_else(|| "tests/corpus".into());
    cfg.corpus_dir = Some(corpus.clone().into());

    let t0 = std::time::Instant::now();
    let report = verify::fuzz(&cfg);
    println!(
        "fuzz: {} program(s), {} lockstep run(s), seed {}, {} job(s), {:.1}s",
        report.iters,
        report.runs,
        cfg.seed,
        cfg.jobs,
        t0.elapsed().as_secs_f64()
    );
    if report.failures.is_empty() {
        println!("no divergences");
        return Ok(());
    }
    for f in &report.failures {
        eprintln!(
            "FAIL iteration {} under `{}` ({} machine):\n{}",
            f.index,
            f.scheme.key(),
            f.variant.width.label(),
            f.divergence
        );
        if let Some(p) = &f.reproducer {
            eprintln!("  reproducer written to {}", p.display());
        }
    }
    Err(format!("{} divergence(s); reproducers in {corpus}", report.failures.len()).into())
}

/// Whether `a` is the value of a preceding `--flag` (so the benchmark-name
/// scan skips e.g. the `4` of `--jobs 4`).
fn is_flag_value(args: &[String], a: &String) -> bool {
    args.iter()
        .position(|x| std::ptr::eq(x, a))
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .is_some_and(|prev| prev.starts_with("--"))
}

/// Sweeps `names` × all schemes and prints an IPC table (base-normalized).
fn bench_matrix(names: &[&str], scale: Scale, width: MachineWidth, jobs: usize) -> CliResult {
    bench_matrix_schemes(names, scale, width, &Scheme::ALL, jobs)
}

fn bench_matrix_schemes(
    names: &[&str],
    scale: Scale,
    width: MachineWidth,
    schemes: &[Scheme],
    jobs: usize,
) -> CliResult {
    let t0 = std::time::Instant::now();
    let m = half_price::run_matrix_parallel(names, scale, width, schemes, jobs, |r| {
        eprintln!("  {} / {}: ipc {:.3}", r.workload, r.scheme.label(), r.stats.ipc());
    })?;
    println!(
        "{} benchmark(s) x {} scheme(s) on the {} machine ({jobs} job(s), {:.1}s):",
        names.len(),
        schemes.len(),
        width.label(),
        t0.elapsed().as_secs_f64()
    );
    let col = schemes.iter().map(|&s| s.key().len()).max().unwrap_or(0).max(8);
    print!("{:10}", "bench");
    for &s in schemes {
        print!(" {:>col$}", s.key());
    }
    println!();
    for row in &m.rows {
        print!("{:10}", row.first().map_or("-", |r| r.workload));
        for r in row {
            print!(" {:>col$.3}", r.stats.ipc());
        }
        println!();
    }
    if schemes.contains(&Scheme::Base) {
        for &s in schemes {
            if s == Scheme::Base {
                continue;
            }
            println!("{}: average degradation {:.1}%", s.label(), m.average_degradation(s) * 100.0);
        }
    }
    Ok(())
}
