//! Quickstart: simulate one benchmark on the base machine and under the
//! combined half-price architecture, and print the comparison.
//!
//! ```text
//! cargo run --release --example quickstart [bench]
//! ```

use half_price::workloads::Scale;
use half_price::{run_workload, MachineWidth, RunError, Scheme};

fn main() -> Result<(), RunError> {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "bzip".to_string());

    println!("simulating `{bench}` on the paper's 4-wide machine (Table 1)...\n");
    let base = run_workload(&bench, Scale::Default, MachineWidth::Four, Scheme::Base)?;
    let half = run_workload(&bench, Scale::Default, MachineWidth::Four, Scheme::Combined)?;

    let b = &base.stats;
    let h = &half.stats;
    println!("committed instructions : {}", b.committed);
    println!("base machine           : {} cycles, IPC {:.3}", b.cycles, b.ipc());
    println!(
        "half-price architecture: {} cycles, IPC {:.3}  (sequential wakeup + sequential RF)",
        h.cycles,
        h.ipc()
    );
    println!(
        "IPC cost of halving the wakeup bus load and the register read ports: {:.2}%",
        (1.0 - h.ipc() / b.ipc()) * 100.0
    );
    println!();
    println!("half-price event counts:");
    println!("  sequential register accesses : {}", h.seq_rf_accesses);
    println!("  slow-side last arrivals      : {}", h.seq_wakeup_slow_last);
    println!("  simultaneous dual wakeups    : {}", h.simultaneous_wakeups);
    println!();
    println!("what the paper buys with that:");
    let w = half_price::circuits::WakeupDelayModel::calibrated_018um();
    let r = half_price::circuits::RegFileDelayModel::calibrated_018um();
    println!(
        "  wakeup logic  {:.0} ps -> {:.0} ps ({:.1}% faster clock path)",
        w.conventional(64, 4),
        w.sequential_wakeup(64, 4),
        w.speedup(64, 4) * 100.0
    );
    println!(
        "  register file {:.2} ns -> {:.2} ns ({:.1}% faster access)",
        r.conventional(160, 8) / 1000.0,
        r.sequential_access(160, 8) / 1000.0,
        r.reduction(160, 8) * 100.0
    );
    Ok(())
}
