//! Design-space exploration: where does the half-price trade pay off?
//!
//! The paper argues the techniques trade a few percent of IPC for a faster
//! clock on the wakeup and register-file paths. This example combines the
//! measured IPC cost with the analytic circuit models to estimate the
//! *net* performance (IPC × frequency) of the half-price machine across
//! scheduler window sizes, assuming the wakeup loop sets the cycle time.
//!
//! ```text
//! cargo run --release --example design_space [bench]
//! ```

use half_price::circuits::WakeupDelayModel;
use half_price::sim::{SimConfig, Simulator, WakeupScheme};
use half_price::workloads::{workload, Scale, CHECKSUM_REG};

fn ipc_of(cfg: SimConfig, w: &half_price::workloads::Workload) -> f64 {
    let mut sim = Simulator::new(&w.program, cfg);
    sim.run();
    assert_eq!(sim.emulator().reg(CHECKSUM_REG), w.expected_checksum);
    sim.stats().ipc()
}

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "parser".to_string());
    let w = workload(&bench, Scale::Default).expect("known benchmark");
    let model = WakeupDelayModel::calibrated_018um();

    println!("`{bench}`: net performance if the wakeup loop sets the clock\n");
    println!(
        "{:>7} {:>10} {:>10} {:>11} {:>11} {:>9}",
        "window", "IPC base", "IPC seq", "clk base", "clk seq", "net gain"
    );
    for window in [32usize, 64, 128] {
        let mut base_cfg = SimConfig::four_wide();
        base_cfg.ruu_size = window;
        base_cfg.lsq_size = window / 2;
        let seq_cfg = base_cfg
            .clone()
            .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) });

        let ipc_base = ipc_of(base_cfg, &w);
        let ipc_seq = ipc_of(seq_cfg, &w);
        // Frequency in GHz implied by the wakeup delay (1e3/ps).
        let f_base = 1000.0 / model.conventional(window as u32, 4);
        let f_seq = 1000.0 / model.sequential_wakeup(window as u32, 4);
        let net = (ipc_seq * f_seq) / (ipc_base * f_base) - 1.0;
        println!(
            "{:>7} {:>10.3} {:>10.3} {:>8.2}GHz {:>8.2}GHz {:>+8.1}%",
            window,
            ipc_base,
            ipc_seq,
            f_base,
            f_seq,
            net * 100.0
        );
    }
    println!(
        "\nThe IPC cost of sequential wakeup stays flat while the circuit\n\
         benefit grows with window size — the paper's core trade."
    );
}
