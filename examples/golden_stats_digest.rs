//! Prints the stats digest table consumed by `tests/stats_golden.rs`.
//!
//! The digest is an FNV-1a hash of the full `SimStats` debug formatting, so
//! any counter change — IPC, histograms, predictor accuracy — changes the
//! digest. Run after an intentional behavior change and paste the output
//! over the `GOLDEN` table in the test:
//!
//! ```text
//! cargo run --release --example golden_stats_digest
//! ```

use half_price::obs::digest::debug_digest as digest;
use half_price::sim::SampleUnits;
use half_price::workloads::Scale;
use half_price::{run_workload, run_workload_observed, run_workload_sampled, MachineWidth, Scheme};

/// Schemes whose observability registry is pinned (kept in sync with
/// `COUNTER_GOLDEN` in `tests/stats_golden.rs`).
const COUNTER_SCHEMES: [Scheme; 4] =
    [Scheme::Base, Scheme::SeqWakeupPredictor, Scheme::SeqRegAccess, Scheme::Combined];

fn main() {
    println!("const GOLDEN: [(&str, Scheme, u64); 24] = [");
    for name in ["gap", "mcf", "perl"] {
        for scheme in Scheme::ALL {
            let r = run_workload(name, Scale::Tiny, MachineWidth::Four, scheme)
                .unwrap_or_else(|e| panic!("{e}"));
            println!("    (\"{name}\", Scheme::{scheme:?}, {:#018x}),", digest(&r.stats));
        }
    }
    println!("];\n");
    println!("const COUNTER_GOLDEN: [(&str, Scheme, u64); 12] = [");
    for name in ["gap", "mcf", "perl"] {
        for scheme in COUNTER_SCHEMES {
            let r = run_workload_observed(name, Scale::Tiny, MachineWidth::Four, scheme, true)
                .unwrap_or_else(|e| panic!("{e}"));
            let c = r.counters.expect("observed run records counters");
            println!("    (\"{name}\", Scheme::{scheme:?}, {:#018x}),", digest(&c));
        }
    }
    println!("];\n");
    println!("const RISCV_GOLDEN: [(&str, Scheme, u64); 12] = [");
    for name in half_price::workloads::RISCV_WORKLOAD_NAMES {
        for scheme in COUNTER_SCHEMES {
            let r = run_workload(name, Scale::Tiny, MachineWidth::Four, scheme)
                .unwrap_or_else(|e| panic!("{e}"));
            println!("    (\"{name}\", Scheme::{scheme:?}, {:#018x}),", digest(&r.stats));
        }
    }
    println!("];\n");
    let units = SampleUnits::parse("500:2000:7500").expect("valid units");
    let r = run_workload_sampled("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Base, units, 42)
        .unwrap_or_else(|e| panic!("{e}"));
    let est = r.sampled.expect("sampled run records an estimate");
    println!("const SAMPLED_GOLDEN: u64 = {:#018x};", digest(&est));
}
