//! Full operand-level characterization of one benchmark — everything the
//! paper's Figures 2–10 measure, from a single base-machine run.
//!
//! ```text
//! cargo run --release --example characterize [bench]
//! ```

use half_price::workloads::Scale;
use half_price::{run_workload, MachineWidth, RunError, Scheme};

fn main() -> Result<(), RunError> {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "parser".to_string());
    let r = run_workload(&bench, Scale::Default, MachineWidth::Four, Scheme::Base)?;
    let s = &r.stats;
    let f = &s.format;
    let total = f.total() as f64;
    let pc = |n: u64| n as f64 / total * 100.0;

    println!(
        "`{bench}` on the 4-wide base machine: {} insts, {} cycles, IPC {:.3}\n",
        s.committed,
        s.cycles,
        s.ipc()
    );

    println!("instruction format mix (Figures 2-3):");
    println!("  0-source format        {:5.1}%", pc(f.zero_src));
    println!("  1-source format        {:5.1}%", pc(f.one_src));
    println!("  2-source format        {:5.1}%", pc(f.two_src));
    println!(
        "    with 2 unique sources{:5.1}%   <- the 2-source instructions",
        pc(f.two_src_two_unique)
    );
    println!("    zero-reg/duplicate   {:5.1}%", pc(f.two_src_one_unique));
    println!("  stores                 {:5.1}%", pc(f.stores));
    println!("  alignment nops         {:5.1}%  (eliminated at decode)", pc(f.nops));

    let rt: u64 = s.ready_at_insert.iter().sum();
    println!("\noperand readiness at scheduler insert (Figure 4, of 2-source insts):");
    for (k, n) in s.ready_at_insert.iter().enumerate() {
        println!("  {k} ready: {:5.1}%", *n as f64 / rt.max(1) as f64 * 100.0);
    }

    let wt: u64 = s.wakeup_slack.iter().sum();
    println!("\nwakeup slack of 2-pending-source insts (Figure 6):");
    for (k, n) in s.wakeup_slack.iter().enumerate() {
        let label = if k == 3 { "3+".to_string() } else { k.to_string() };
        println!("  {label:>2} cycles: {:5.1}%", *n as f64 / wt.max(1) as f64 * 100.0);
    }

    println!("\nlast-arriving operand predictability (Table 3 / Figure 7):");
    let o = &s.wakeup_order;
    let hist = (o.same_as_last + o.diff_from_last).max(1);
    println!(
        "  wakeup order same as last instance: {:5.1}%",
        o.same_as_last as f64 / hist as f64 * 100.0
    );
    for (entries, la) in &s.last_arrival {
        println!("  {entries:>5}-entry predictor accuracy: {:5.1}%", la.accuracy() * 100.0);
    }

    println!("\nregister-read demand (Figure 10, % of committed insts):");
    let c = s.committed.max(1) as f64;
    println!("  back-to-back issue (bypass)  {:5.1}%", s.rf_back_to_back as f64 / c * 100.0);
    println!("  2 ready at insert            {:5.1}%", s.rf_two_ready as f64 / c * 100.0);
    println!("  non-back-to-back             {:5.1}%", s.rf_non_back_to_back as f64 / c * 100.0);
    println!("  => need two read ports       {:5.1}%", s.two_port_fraction() * 100.0);

    println!("\nmemory & control:");
    println!("  DL1 miss rate    {:5.2}%", s.hierarchy.dl1.miss_rate() * 100.0);
    println!("  L2 miss rate     {:5.2}%", s.hierarchy.l2.miss_rate() * 100.0);
    println!("  branch mispredict{:5.2}%", s.mispredict_rate() * 100.0);
    println!("  load-miss replays{:>7}", s.load_miss_replays);

    println!("\npipeline utilization:");
    println!("  avg RUU occupancy {:.1} / 64", s.avg_window_occupancy());
    println!("  idle issue cycles {:.1}%", s.idle_issue_fraction() * 100.0);
    for (k, n) in s.issue_histogram.iter().enumerate() {
        println!("    issued {k}: {:5.1}%", *n as f64 / s.cycles.max(1) as f64 * 100.0);
    }
    Ok(())
}
