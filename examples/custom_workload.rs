//! Running your own program through the pipeline: write assembly text,
//! assemble it, execute it functionally, then time it under every scheme.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use half_price::asm::parse_program;
use half_price::emu::Emulator;
use half_price::isa::Reg;
use half_price::sim::Simulator;
use half_price::{MachineWidth, Scheme};

/// A dot-product kernel with a reduction tail — 2-source-heavy on purpose,
/// so the half-price schemes have something to chew on.
const SOURCE: &str = "
    ; r1 = vector A, r2 = vector B, r3 = n, r4 = accumulator
    li   r1, 65536
    li   r2, 131072
    li   r3, 512
    li   r4, 0
loop:
    ldq  r5, (r1)
    ldq  r6, (r2)
    mul  r5, r6, r7     ; two loads feed a multiply
    add  r4, r7, r4     ; reduction (2-source)
    add  r1, #8, r1
    add  r2, #8, r2
    sub  r3, #1, r3
    bgt  r3, loop
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut program = parse_program(SOURCE)?;

    // Fill the input vectors: A[i] = i+1, B[i] = 2i+1.
    let a: Vec<u64> = (0..512u64).map(|i| i + 1).collect();
    let b: Vec<u64> = (0..512u64).map(|i| 2 * i + 1).collect();
    let pack = |v: &[u64]| v.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>();
    program.add_data(65536, pack(&a));
    program.add_data(131072, pack(&b));

    // Functional check first.
    let mut emu = Emulator::new(&program);
    emu.run(1_000_000)?;
    let expected: u64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    assert_eq!(emu.reg(Reg::R4), expected, "dot product is correct");
    println!("functional result: A.B = {expected} ({} instructions)\n", emu.executed());

    // Now time it under every scheme of the paper's evaluation.
    println!("{:24} {:>9} {:>7}  vs base", "scheme", "cycles", "IPC");
    let mut base_ipc = 0.0;
    for scheme in Scheme::ALL {
        let mut sim = Simulator::new(&program, scheme.configure(MachineWidth::Four));
        sim.run();
        assert_eq!(sim.emulator().reg(Reg::R4), expected, "timing never changes results");
        let ipc = sim.stats().ipc();
        if scheme == Scheme::Base {
            base_ipc = ipc;
        }
        println!(
            "{:24} {:>9} {:>7.3}  {:+.2}%",
            scheme.label(),
            sim.stats().cycles,
            ipc,
            (ipc / base_ipc - 1.0) * 100.0
        );
    }
    Ok(())
}
