//! Replays every checked-in reproducer in `tests/corpus/` through the full
//! differential lockstep check. Any file the fuzzer (or a human) drops in
//! the corpus becomes a permanent regression guard; a divergence here means
//! a previously-fixed scheduler bug has come back.

use half_price::verify::replay_dir;
use std::path::Path;

#[test]
fn corpus_reproducers_replay_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let report = replay_dir(&dir).expect("corpus files load and parse");
    assert!(
        report.cases >= 4,
        "seed corpus missing — regenerate with \
         `cargo run --release -p hpa-verify --example seed_corpus -- tests/corpus` \
         (found {} case(s))",
        report.cases
    );
    let summary: Vec<String> = report
        .failures
        .iter()
        .map(|(path, scheme, d)| format!("{} under `{}`: {d}", path.display(), scheme.key()))
        .collect();
    assert!(summary.is_empty(), "corpus divergences:\n{}", summary.join("\n"));
}
