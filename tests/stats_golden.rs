//! Before/after stats equivalence for scheduler-core rewrites.
//!
//! The `GOLDEN` table pins an FNV-1a digest of the full `SimStats` debug
//! formatting — every counter, histogram and predictor-accuracy field —
//! for three workloads under every scheme, captured from the pre-
//! event-driven scheduler (PR 1). Any rewrite of wakeup/select, the LSQ
//! walk or the PC-indexed tables must keep all of them bit-identical.
//!
//! Regenerate (only after an *intentional* timing change) with
//! `cargo run --release --example golden_stats_digest`.

use half_price::obs::digest::debug_digest as digest;
use half_price::sim::SampleUnits;
use half_price::workloads::Scale;
use half_price::{run_workload, run_workload_observed, run_workload_sampled, MachineWidth, Scheme};

const GOLDEN: [(&str, Scheme, u64); 24] = [
    ("gap", Scheme::Base, 0xb63cdac63665bc31),
    ("gap", Scheme::SeqWakeupPredictor, 0xa56ef9aff220785f),
    ("gap", Scheme::SeqWakeupStatic, 0x22c87c0d608e2cd9),
    ("gap", Scheme::TagElimination, 0xca541eb69d1c3a3e),
    ("gap", Scheme::SeqRegAccess, 0x143765ed2cc76e15),
    ("gap", Scheme::ExtraRfStage, 0x3a7d317aa9cbe9b9),
    ("gap", Scheme::HalfPortsCrossbar, 0x5d554b5313a83fb3),
    ("gap", Scheme::Combined, 0x4d92144ef73e7df4),
    ("mcf", Scheme::Base, 0xa1026ee4190746b9),
    ("mcf", Scheme::SeqWakeupPredictor, 0xd951a37132153a4c),
    ("mcf", Scheme::SeqWakeupStatic, 0xda51d899da435981),
    ("mcf", Scheme::TagElimination, 0x14da699664f99aaa),
    ("mcf", Scheme::SeqRegAccess, 0xede5532b5c5b9996),
    ("mcf", Scheme::ExtraRfStage, 0x9a766e7d024059f8),
    ("mcf", Scheme::HalfPortsCrossbar, 0x42a2e0ae47cd0f9d),
    ("mcf", Scheme::Combined, 0x688767037a51ccf6),
    ("perl", Scheme::Base, 0xb2f91c3806326787),
    ("perl", Scheme::SeqWakeupPredictor, 0xaf3e24033872033d),
    ("perl", Scheme::SeqWakeupStatic, 0xb447f36a9104338b),
    ("perl", Scheme::TagElimination, 0x3b7714d59e8a8acf),
    ("perl", Scheme::SeqRegAccess, 0x25d17ec6c5ab440b),
    ("perl", Scheme::ExtraRfStage, 0x7982a9eaf7a15ba2),
    ("perl", Scheme::HalfPortsCrossbar, 0xb2f91c3806326787),
    ("perl", Scheme::Combined, 0x47b7840ad890c063),
];

/// Digests of the observability registry (`Counters` debug formatting:
/// CPI stack, delay/occupancy histograms, re-read counter) for the
/// schemes the CPI-stack evaluation reports. Captured when the
/// observability layer landed; regenerate with the same example.
const COUNTER_GOLDEN: [(&str, Scheme, u64); 12] = [
    ("gap", Scheme::Base, 0x1ac7b4abd9090148),
    ("gap", Scheme::SeqWakeupPredictor, 0x0b796c71d57a0945),
    ("gap", Scheme::SeqRegAccess, 0xc618fa6f5d013963),
    ("gap", Scheme::Combined, 0x5c700ff87f8d582f),
    ("mcf", Scheme::Base, 0x9d3554d8abe9af5b),
    ("mcf", Scheme::SeqWakeupPredictor, 0x6fb236d48962e52c),
    ("mcf", Scheme::SeqRegAccess, 0xe28ea24fe4e95e4f),
    ("mcf", Scheme::Combined, 0xf8bfd0dca905b07d),
    ("perl", Scheme::Base, 0x5b59ca3999032589),
    ("perl", Scheme::SeqWakeupPredictor, 0xdbda8882a38d0fed),
    ("perl", Scheme::SeqRegAccess, 0x8348ddce3a7e6045),
    ("perl", Scheme::Combined, 0x612147d326218a57),
];

/// Digests for the real-binary RISC-V workloads (checked-in fixture ELFs
/// translated by the `hpa-rv` frontend) under the base machine and the
/// paper's three headline half-price configurations. Pins the whole
/// frontend: a decode, translation or ABI-shim change moves these.
const RISCV_GOLDEN: [(&str, Scheme, u64); 12] = [
    ("rv-quicksort", Scheme::Base, 0x29306637d1764c41),
    ("rv-quicksort", Scheme::SeqWakeupPredictor, 0x2cb304d78713b717),
    ("rv-quicksort", Scheme::SeqRegAccess, 0xa429ab8a0446aeb0),
    ("rv-quicksort", Scheme::Combined, 0x6f3362dcb471f73f),
    ("rv-matmul", Scheme::Base, 0x4f3c4aba62bea02e),
    ("rv-matmul", Scheme::SeqWakeupPredictor, 0xa7ef0370d16be4d8),
    ("rv-matmul", Scheme::SeqRegAccess, 0x24844db3ddea91a6),
    ("rv-matmul", Scheme::Combined, 0xbcbf62fb1c83c145),
    ("rv-sieve", Scheme::Base, 0x726c8560d23f8b3e),
    ("rv-sieve", Scheme::SeqWakeupPredictor, 0xa7efadf75172edd6),
    ("rv-sieve", Scheme::SeqRegAccess, 0xc0199a50f89ff629),
    ("rv-sieve", Scheme::Combined, 0x470404a40abf7387),
];

/// Digest of one fixed sampled run (`gcc` tiny, 4-wide base, units
/// 500:2000:7500, seed 42) over the full `SampledEstimate` debug
/// formatting — window placement, every per-sample (committed, cycles)
/// pair, the mean and the confidence interval. Pins the sampling walk
/// itself: a change to snapshot placement, warmup accounting or the
/// estimator moves this digest even when full-detail digests hold.
const SAMPLED_GOLDEN: u64 = 0xe055df6842f1f446;

/// Every scheme's full statistics stay bit-identical to the pre-rewrite
/// scheduler, for a compute-bound, a memory-bound and a branchy workload.
#[test]
fn stats_match_pre_rewrite_golden_digests() {
    let mut failures = Vec::new();
    for &(name, scheme, expected) in &GOLDEN {
        let r = run_workload(name, Scale::Tiny, MachineWidth::Four, scheme)
            .unwrap_or_else(|e| panic!("{e}"));
        let got = digest(&r.stats);
        if got != expected {
            failures.push(format!("{name}/{scheme:?}: {got:#018x} != {expected:#018x}"));
        }
    }
    assert!(failures.is_empty(), "stats diverged from golden:\n{}", failures.join("\n"));
}

/// The translated real-binary workloads are as pinned as the hand-written
/// kernels: every fixture × scheme cell must stay bit-identical (and
/// `run_workload` itself verifies the architectural checksum against the
/// host-side reference model on every run).
#[test]
fn riscv_stats_match_golden_digests() {
    let mut failures = Vec::new();
    for &(name, scheme, expected) in &RISCV_GOLDEN {
        let r = run_workload(name, Scale::Tiny, MachineWidth::Four, scheme)
            .unwrap_or_else(|e| panic!("{e}"));
        let got = digest(&r.stats);
        if got != expected {
            failures.push(format!("{name}/{scheme:?}: {got:#018x} != {expected:#018x}"));
        }
    }
    assert!(failures.is_empty(), "riscv stats diverged from golden:\n{}", failures.join("\n"));
}

/// Enabling the observability registry changes no stats digest — the
/// counters are pure observation — and the registry's own contents are
/// pinned, so attribution changes are as visible as timing changes.
#[test]
fn observed_runs_keep_stats_digests_and_pin_counter_digests() {
    let mut failures = Vec::new();
    for &(name, scheme, expected) in &COUNTER_GOLDEN {
        let r = run_workload_observed(name, Scale::Tiny, MachineWidth::Four, scheme, true)
            .unwrap_or_else(|e| panic!("{e}"));
        let stats_expected = GOLDEN
            .iter()
            .find(|&&(n, s, _)| n == name && s == scheme)
            .map(|&(_, _, d)| d)
            .expect("counter cells are a subset of the stats cells");
        let got_stats = digest(&r.stats);
        if got_stats != stats_expected {
            failures.push(format!(
                "{name}/{scheme:?}: stats with counters on {got_stats:#018x} != \
                 {stats_expected:#018x}"
            ));
        }
        let c = r.counters.expect("observed run records counters");
        let got = digest(&c);
        if got != expected {
            failures.push(format!("{name}/{scheme:?}: counters {got:#018x} != {expected:#018x}"));
        }
    }
    assert!(failures.is_empty(), "observability diverged from golden:\n{}", failures.join("\n"));
}

/// The sampled-mode walk is deterministic and pinned: same program, units
/// and seed always place the same windows and measure the same cycles.
#[test]
fn sampled_run_matches_golden_digest() {
    let units = SampleUnits::parse("500:2000:7500").expect("valid units");
    let r = run_workload_sampled("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Base, units, 42)
        .unwrap_or_else(|e| panic!("{e}"));
    let est = r.sampled.expect("sampled run records an estimate");
    let got = digest(&est);
    assert_eq!(
        got,
        SAMPLED_GOLDEN,
        "sampled estimate diverged from golden: {got:#018x} != {SAMPLED_GOLDEN:#018x} \
         ({} samples, mean IPC {:.4} ± {:.4})",
        est.samples.len(),
        est.mean_ipc,
        est.ci_half_width
    );
}
