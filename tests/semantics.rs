//! The cardinal invariant: no scheduling or register-file scheme ever
//! changes what a program computes — timing models only move cycles.
//! Every workload runs under every scheme and must produce the reference
//! checksum and the same committed-instruction count.

use half_price::workloads::{Scale, WORKLOAD_NAMES};
use half_price::{run_workload, MachineWidth, Scheme};

#[test]
fn every_scheme_preserves_semantics_on_every_workload() {
    for name in WORKLOAD_NAMES {
        let mut committed = None;
        for scheme in Scheme::ALL {
            // run_workload returns Err on a checksum mismatch.
            let r = run_workload(name, Scale::Tiny, MachineWidth::Four, scheme)
                .unwrap_or_else(|e| panic!("{name}/{scheme:?}: {e}"));
            match committed {
                None => committed = Some(r.stats.committed),
                Some(c) => {
                    assert_eq!(r.stats.committed, c, "{name}/{scheme:?}: committed count diverged")
                }
            }
            assert!(r.stats.ipc() > 0.0, "{name}/{scheme:?}");
        }
    }
}

#[test]
fn eight_wide_machine_preserves_semantics() {
    for name in WORKLOAD_NAMES {
        for scheme in [Scheme::Base, Scheme::Combined] {
            run_workload(name, Scale::Tiny, MachineWidth::Eight, scheme)
                .unwrap_or_else(|e| panic!("{name}/{scheme:?}: {e}"));
        }
    }
}

#[test]
fn selective_recovery_preserves_semantics() {
    use half_price::sim::{RecoveryKind, Simulator};
    use half_price::workloads::{workload, CHECKSUM_REG};
    for name in ["mcf", "gap", "vpr"] {
        let w = workload(name, Scale::Tiny).expect("known");
        let cfg = MachineWidth::Four.base_config().with_recovery(RecoveryKind::Selective);
        let mut sim = Simulator::new(&w.program, cfg);
        sim.run();
        assert_eq!(sim.emulator().reg(CHECKSUM_REG), w.expected_checksum, "{name}");
    }
}
