//! End-to-end job lifecycle through a real daemon: an in-process
//! [`Server`] bound to an ephemeral port, driven over actual TCP by the
//! [`hpa_sdk`] client — the same wire path `hpa serve` / `hpa submit`
//! exercise, minus the process boundary.

use half_price::obs::digest::debug_digest;
use half_price::sdk::{Client, ClientError};
use half_price::serve::proto::{JobProgram, JobRequest, JobStatus};
use half_price::serve::server::{Server, ServerConfig};
use half_price::workloads::Scale;
use half_price::{MachineWidth, Scheme};
use std::io;
use std::thread::JoinHandle;
use std::time::Duration;

/// Binds a daemon on an ephemeral port and runs it on its own thread;
/// returns a client for it plus the join handle (`run` returns once a
/// `/shutdown` drains it).
fn start_server(workers: usize) -> (Client, JoinHandle<io::Result<()>>) {
    start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
}

fn start_server_with(config: ServerConfig) -> (Client, JoinHandle<io::Result<()>>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound socket has an address").to_string();
    let handle = std::thread::spawn(move || server.run());
    (Client::new(addr), handle)
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn duplicate_job_is_served_from_cache_bit_identically() {
    let (client, handle) = start_server(2);

    let request = JobRequest::workload("gcc", Scale::Tiny, Scheme::Base);
    let first = client.submit(&request).expect("first submit");
    assert!(!first.cached, "an empty cache cannot hit");
    let first = client.wait(first.job_id, WAIT).expect("first result");
    assert_eq!(first.status, JobStatus::Done);
    assert_eq!(first.cells.len(), 1);
    assert!(!first.cells[0].cached);

    // Identical request: the submit fast-path finds every cell cached and
    // completes the job without ever queueing it.
    let second = client.submit(&request).expect("second submit");
    assert_eq!(second.status, JobStatus::Done, "full cache hit completes at submit");
    assert!(second.cached);
    let second = client.result(second.job_id).expect("second result");
    assert!(second.cached && second.cells[0].cached);

    // The cached cell is bit-identical to the originally rendered one.
    assert_eq!(first.cells[0].payload_json(), second.cells[0].payload_json());

    // And the payload's digest is the digest of a direct in-process run —
    // the daemon adds transport, not noise.
    let direct = half_price::run_workload("gcc", Scale::Tiny, MachineWidth::Four, Scheme::Base)
        .expect("direct run");
    assert_eq!(first.cells[0].stats_digest(), Some(debug_digest(&direct.stats)));

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn zero_deadline_expires_instead_of_running() {
    let (client, handle) = start_server(1);

    let mut request = JobRequest::workload("mcf", Scale::Tiny, Scheme::Base);
    request.seed = 0xdead; // unique: must miss the cache, or it never queues
    request.deadline_ms = Some(0);
    let submit = client.submit(&request).expect("submit");
    assert_eq!(submit.status, JobStatus::Queued);
    let result = client.wait(submit.job_id, WAIT).expect("result");
    assert_eq!(result.status, JobStatus::Expired);
    assert!(result.cells.is_empty(), "an expired job never produced cells");
    assert!(result.error.is_some());

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn planted_panic_fails_the_job_but_not_the_server() {
    let (client, handle) = start_server(1);

    // A non-power-of-two PC table panics the simulator constructor; the
    // catch_unwind isolation must turn that into a `failed` job.
    let mut request = JobRequest::workload("gcc", Scale::Tiny, Scheme::Base);
    request.pc_table_entries = Some(3);
    let submit = client.submit(&request).expect("submit");
    let result = client.wait(submit.job_id, WAIT).expect("result");
    assert_eq!(result.status, JobStatus::Failed);
    let error = result.error.expect("failed jobs carry an error");
    assert!(error.contains("panicked"), "unexpected error: {error}");

    // The worker survived: the same server still executes jobs.
    let ok = client
        .submit(&JobRequest::workload("gcc", Scale::Tiny, Scheme::Base))
        .expect("post-panic submit");
    let ok = client.wait(ok.job_id, WAIT).expect("post-panic result");
    assert_eq!(ok.status, JobStatus::Done);

    let health = client.health().expect("health");
    assert_eq!(
        health.get("counters").and_then(|c| c.get("jobs_failed")).and_then(|v| v.as_u64()),
        Some(1)
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn overflowing_the_queue_is_a_structured_429_with_a_retry_hint() {
    let (client, handle) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        max_queue: Some(1),
        ..ServerConfig::default()
    });
    // Retries off: this test wants to *see* the 429, not ride it out.
    let client = client.with_retries(0);

    // Pin the single worker on a long-running source job, and only then
    // fill the one queue slot — the admission outcome is deterministic,
    // not a race against the worker's pop.
    let slow = JobRequest {
        program: JobProgram::Source(
            "li r1, #500000\nloop:\n  sub r1, #1, r1\n  bgt r1, loop\n  halt\n".to_string(),
        ),
        width: MachineWidth::Four,
        schemes: vec![Scheme::Base],
        seed: 0xa1,
        sampled: None,
        deadline_ms: None,
        cycle_budget: half_price::serve::proto::DEFAULT_CYCLE_BUDGET,
        pc_table_entries: None,
    };
    let slow_id = client.submit(&slow).expect("slow submit").job_id;
    while client.status(slow_id).expect("status").status == JobStatus::Queued {
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut filler = JobRequest::workload("gcc", Scale::Tiny, Scheme::Base);
    filler.seed = 0xa2;
    let filler_id = client.submit(&filler).expect("one queue slot is free").job_id;

    let mut overflow = JobRequest::workload("gcc", Scale::Tiny, Scheme::Base);
    overflow.seed = 0xa3;
    match client.submit(&overflow) {
        Err(ClientError::Server { status: 429, message, retry_after_ms }) => {
            assert!(message.contains("queue full"), "{message}");
            let hint = retry_after_ms.expect("429 carries a retry_after_ms hint");
            assert!((100..=60_000).contains(&hint), "hint {hint} outside the clamp");
        }
        other => panic!("expected a structured 429, got {other:?}"),
    }

    // Admitted work still completes, and /health reports the rejection.
    for id in [slow_id, filler_id] {
        let result = client.wait(id, WAIT).expect("admitted job result");
        assert_eq!(result.status, JobStatus::Done);
    }
    let health = client.health().expect("health");
    assert_eq!(
        health.get("counters").and_then(|c| c.get("jobs_rejected")).and_then(|v| v.as_u64()),
        Some(1)
    );
    assert_eq!(health.get("max_queue").and_then(|v| v.as_u64()), Some(1));

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn cache_entry_bound_evicts_and_reports_in_health() {
    let (client, handle) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_max_entries: Some(1),
        ..ServerConfig::default()
    });

    for seed in [0xb1, 0xb2u64] {
        let mut r = JobRequest::workload("gcc", Scale::Tiny, Scheme::Base);
        r.seed = seed;
        let submit = client.submit(&r).expect("submit");
        let result = client.wait(submit.job_id, WAIT).expect("result");
        assert_eq!(result.status, JobStatus::Done);
    }

    let health = client.health().expect("health");
    assert_eq!(
        health.get("cache_entries").and_then(|v| v.as_u64()),
        Some(1),
        "the entry bound holds"
    );
    assert_eq!(
        health.get("counters").and_then(|c| c.get("cache_evictions")).and_then(|v| v.as_u64()),
        Some(1),
        "the second fill evicted the first"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn source_programs_run_end_to_end() {
    let (client, handle) = start_server(1);

    let request = JobRequest {
        program: JobProgram::Source(
            "li r1, #5\nloop:\n  add r2, #1, r2\n  sub r1, #1, r1\n  bgt r1, loop\n  halt\n"
                .to_string(),
        ),
        width: MachineWidth::Four,
        schemes: vec![Scheme::Base, Scheme::Combined],
        seed: 0,
        sampled: None,
        deadline_ms: None,
        cycle_budget: half_price::serve::proto::DEFAULT_CYCLE_BUDGET,
        pc_table_entries: None,
    };
    let submit = client.submit(&request).expect("submit");
    let result = client.wait(submit.job_id, WAIT).expect("result");
    assert_eq!(result.status, JobStatus::Done);
    assert_eq!(result.cells.len(), 2, "one cell per requested scheme");
    assert_eq!(result.cells[0].scheme, Scheme::Base);
    assert_eq!(result.cells[1].scheme, Scheme::Combined);
    for cell in &result.cells {
        assert!(cell.ipc().is_some_and(|ipc| ipc > 0.0));
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}
