//! Property-based tests (proptest) on the core invariants:
//!
//! * the timing simulator and the functional emulator agree on final
//!   architectural state for arbitrary generated programs, under every
//!   scheme;
//! * instruction encode/decode and text assemble/disassemble round-trip;
//! * cache and predictor structures never violate their bounds;
//! * the circuit delay models are monotonic in their structural inputs.

use half_price::asm::{disassemble, parse_program, Asm, Program};
use half_price::cache::{Cache, CacheConfig};
use half_price::circuits::{RegFileDelayModel, WakeupDelayModel};
use half_price::emu::Emulator;
use half_price::isa::{decode, encode, AluOp, BranchCond, Inst, MemWidth, Reg, UnaryOp};
use half_price::sim::{RegFileScheme, SimConfig, Simulator, WakeupScheme};
use proptest::prelude::*;

const DATA: i64 = 0x1_0000;

/// One step of a generated straight-line-with-forward-branches program.
#[derive(Clone, Debug)]
enum Step {
    Alu { op: AluOp, ra: u8, rb: Option<u8>, lit: i16, rc: u8 },
    Unary { op: UnaryOp, ra: u8, rc: u8 },
    Load { width: MemWidth, rt: u8, disp: i16 },
    Store { width: MemWidth, rt: u8, disp: i16 },
    /// Forward conditional branch skipping 1–3 instructions.
    Branch { cond: BranchCond, ra: u8, skip: u8 },
    Nop,
}

/// Registers r1..r15 are playground; r28 holds the data base.
fn arb_reg() -> impl Strategy<Value = u8> {
    1u8..16
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (arb_alu_op(), arb_reg(), prop::option::of(arb_reg()), any::<i16>(), arb_reg())
            .prop_map(|(op, ra, rb, lit, rc)| Step::Alu { op, ra, rb, lit, rc }),
        1 => (prop::sample::select(UnaryOp::ALL.to_vec()), arb_reg(), arb_reg())
            .prop_map(|(op, ra, rc)| Step::Unary { op, ra, rc }),
        2 => (prop::sample::select(vec![MemWidth::Byte, MemWidth::Long, MemWidth::Quad]),
              arb_reg(), 0i16..4096)
            .prop_map(|(width, rt, disp)| Step::Load { width, rt, disp }),
        2 => (prop::sample::select(vec![MemWidth::Byte, MemWidth::Long, MemWidth::Quad]),
              arb_reg(), 0i16..4096)
            .prop_map(|(width, rt, disp)| Step::Store { width, rt, disp }),
        1 => (prop::sample::select(BranchCond::ALL.to_vec()), arb_reg(), 1u8..4)
            .prop_map(|(cond, ra, skip)| Step::Branch { cond, ra, skip }),
        1 => Just(Step::Nop),
    ]
}

/// Builds a terminating program: a prelude seeding registers, the steps,
/// then `halt`. Branches only skip forward, so termination is structural.
fn build_program(steps: &[Step]) -> Program {
    let mut a = Asm::new();
    a.li(Reg::R28, DATA);
    for (i, r) in (1u8..16).enumerate() {
        a.li(Reg::new(r), (i as i64 + 1) * 0x0123_4567 % 0x7FFF_FFFF);
    }
    for (idx, step) in steps.iter().enumerate() {
        match *step {
            Step::Alu { op, ra, rb, lit, rc } => {
                match rb {
                    Some(rb) => a.raw(Inst::op(op, Reg::new(ra), Reg::new(rb), Reg::new(rc))),
                    None => a.raw(Inst::op(op, Reg::new(ra), lit, Reg::new(rc))),
                };
            }
            Step::Unary { op, ra, rc } => {
                a.raw(Inst::Op1 { op, ra: Reg::new(ra), rc: Reg::new(rc) });
            }
            Step::Load { width, rt, disp } => {
                a.raw(Inst::Load { width, rt: Reg::new(rt), base: Reg::R28, disp });
            }
            Step::Store { width, rt, disp } => {
                a.raw(Inst::Store { width, rt: Reg::new(rt), base: Reg::R28, disp });
            }
            Step::Branch { cond, ra, skip } => {
                let skip = (skip as usize).min(steps.len() - idx - 1);
                a.raw(Inst::Branch { cond, ra: Reg::new(ra), disp: skip as i32 });
            }
            Step::Nop => {
                a.nop();
            }
        }
    }
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn final_state(emu: &Emulator) -> Vec<u64> {
    (0..32).map(|r| emu.reg(Reg::new(r))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heart of the test suite: for random programs, the out-of-order
    /// timing simulator must visit exactly the functional emulator's
    /// architectural states, under every scheduling/RF scheme.
    #[test]
    fn simulator_matches_emulator(steps in prop::collection::vec(arb_step(), 1..120)) {
        let program = build_program(&steps);
        let mut emu = Emulator::new(&program);
        emu.run(1_000_000).expect("terminates");
        prop_assert!(emu.halted());
        let want = final_state(&emu);

        for config in [
            SimConfig::four_wide(),
            SimConfig::eight_wide(),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(128) })
                .with_regfile(RegFileScheme::SequentialAccess),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::TagElimination { predictor_entries: 128 }),
        ] {
            let mut sim = Simulator::new(&program, config);
            sim.run();
            prop_assert_eq!(final_state(sim.emulator()), want.clone());
            let s = sim.stats();
            prop_assert!(s.cycles > 0);
            // Commit count = non-nop instructions executed.
            prop_assert!(s.committed <= emu.executed());
        }
    }

    /// Stepping random programs cycle by cycle, the scheduler's internal
    /// invariants (window sequencing, operand/producer consistency, rename
    /// coherence, LSQ accounting) hold at every cycle boundary.
    #[test]
    fn scheduler_invariants_hold_cycle_by_cycle(
        steps in prop::collection::vec(arb_step(), 1..80),
    ) {
        let program = build_program(&steps);
        for config in [
            SimConfig::four_wide(),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None })
                .with_regfile(RegFileScheme::SequentialAccess),
        ] {
            let mut sim = Simulator::new(&program, config);
            let mut guard = 0u32;
            loop {
                sim.step_cycle();
                sim.check_invariants();
                guard += 1;
                prop_assert!(guard < 200_000, "runaway");
                // Done when everything except decode-eliminated nops
                // has committed.
                if sim.emulator().halted()
                    && sim.stats().committed + sim.stats().format.nops
                        == sim.emulator().executed()
                {
                    break;
                }
            }
        }
    }

    #[test]
    fn encode_decode_round_trips(steps in prop::collection::vec(arb_step(), 1..80)) {
        let program = build_program(&steps);
        for inst in program.insts() {
            let word = encode(inst);
            prop_assert_eq!(&decode(word).unwrap(), inst);
        }
    }

    #[test]
    fn text_assembler_round_trips(steps in prop::collection::vec(arb_step(), 1..60)) {
        let program = build_program(&steps);
        let text = disassemble(&program);
        let back = parse_program(&text).expect("disassembly reparses");
        prop_assert_eq!(back.insts(), program.insts());
    }

    #[test]
    fn cache_counters_are_consistent(addrs in prop::collection::vec(0u64..65536, 1..300)) {
        // Probing never disturbs statistics.
        let c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 2,
            hit_latency: 1,
        });
        for &addr in &addrs {
            let _ = c.probe(addr);
        }
        prop_assert_eq!(c.stats().accesses, 0);
        // Drive through a Hierarchy to exercise the access paths.
        let mut h = half_price::cache::Hierarchy::new(
            half_price::cache::HierarchyConfig::table1(),
        );
        for &addr in &addrs {
            let lat = h.data_read(addr);
            prop_assert!(lat >= 2, "at least the DL1 hit latency");
            prop_assert!(h.dl1_would_hit(addr), "line resident after access");
        }
        let s = h.stats();
        prop_assert_eq!(s.dl1.accesses, addrs.len() as u64);
        prop_assert!(s.dl1.hits <= s.dl1.accesses);
        prop_assert!(s.l2.accesses <= s.dl1.accesses + s.dl1.misses());
    }

    #[test]
    fn delay_models_are_monotonic(
        entries in 16u32..512,
        width in 2u32..16,
        ports in 4u32..40,
    ) {
        let w = WakeupDelayModel::calibrated_018um();
        prop_assert!(w.delay(entries + 16, width, 2) > w.delay(entries, width, 2));
        prop_assert!(w.delay(entries, width, 2) > w.delay(entries, width, 1));
        prop_assert!(w.delay(entries, width + 1, 2) >= w.delay(entries, width, 2));
        let r = RegFileDelayModel::calibrated_018um();
        prop_assert!(r.access_time(entries + 16, ports) > r.access_time(entries, ports));
        prop_assert!(r.access_time(entries, ports + 1) > r.access_time(entries, ports));
    }

    #[test]
    fn last_arrival_predictor_is_bounded(
        updates in prop::collection::vec((0u64..4096, any::<bool>()), 0..500),
    ) {
        use half_price::bpred::{LastArrivalPredictor, Side};
        let mut p = LastArrivalPredictor::new(128);
        for (pc, left) in updates {
            let side = if left { Side::Left } else { Side::Right };
            p.update(pc * 4, side);
            // Prediction is always one of the two sides and never panics,
            // including for aliased and never-trained PCs.
            let _ = p.predict(pc * 4);
            let _ = p.predict((pc + 1) * 4);
        }
    }
}
