//! Property-style tests on the core invariants, driven by the workspace's
//! deterministic `SplitMix64` generator (proptest is unavailable offline):
//!
//! * the timing simulator and the functional emulator agree on final
//!   architectural state for arbitrary generated programs, under every
//!   scheme;
//! * instruction encode/decode and text assemble/disassemble round-trip;
//! * cache and predictor structures never violate their bounds;
//! * the circuit delay models are monotonic in their structural inputs.
//!
//! Each test sweeps a fixed set of seeds, so failures reproduce exactly:
//! re-run with the printed seed to replay a failing case.

use half_price::asm::{disassemble, parse_program, Asm, Program};
use half_price::cache::{Cache, CacheConfig};
use half_price::circuits::{RegFileDelayModel, WakeupDelayModel};
use half_price::emu::Emulator;
use half_price::isa::{decode, encode, AluOp, BranchCond, Inst, MemWidth, Reg, UnaryOp};
use half_price::sim::{RegFileScheme, SimConfig, Simulator, WakeupScheme};
use half_price::workloads::SplitMix64;

const DATA: i64 = 0x1_0000;

/// One step of a generated straight-line-with-forward-branches program.
#[derive(Clone, Debug)]
enum Step {
    Alu {
        op: AluOp,
        ra: u8,
        rb: Option<u8>,
        lit: i16,
        rc: u8,
    },
    Unary {
        op: UnaryOp,
        ra: u8,
        rc: u8,
    },
    Load {
        width: MemWidth,
        rt: u8,
        disp: i16,
    },
    Store {
        width: MemWidth,
        rt: u8,
        disp: i16,
    },
    /// Forward conditional branch skipping 1–3 instructions.
    Branch {
        cond: BranchCond,
        ra: u8,
        skip: u8,
    },
    Nop,
}

/// Registers r1..r15 are playground; r28 holds the data base.
fn gen_reg(rng: &mut SplitMix64) -> u8 {
    1 + rng.below(15) as u8
}

fn pick<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> T {
    items[rng.below(items.len() as u64) as usize]
}

fn gen_step(rng: &mut SplitMix64) -> Step {
    // Weights mirror the old proptest distribution: 5 ALU, 1 unary,
    // 2 load, 2 store, 1 branch, 1 nop.
    match rng.below(12) {
        0..=4 => {
            let op = pick(rng, &AluOp::ALL);
            Step::Alu {
                op,
                ra: gen_reg(rng),
                // Literal forms only exist for the ops that encode them.
                rb: if rng.below(2) == 0 || !op.has_lit_form() { Some(gen_reg(rng)) } else { None },
                lit: rng.next_u64() as i16,
                rc: gen_reg(rng),
            }
        }
        5 => Step::Unary { op: pick(rng, &UnaryOp::ALL), ra: gen_reg(rng), rc: gen_reg(rng) },
        6 | 7 => Step::Load {
            width: pick(rng, &[MemWidth::Byte, MemWidth::Long, MemWidth::Quad]),
            rt: gen_reg(rng),
            disp: rng.below(4096) as i16,
        },
        8 | 9 => Step::Store {
            width: pick(rng, &[MemWidth::Byte, MemWidth::Long, MemWidth::Quad]),
            rt: gen_reg(rng),
            disp: rng.below(4096) as i16,
        },
        10 => Step::Branch {
            cond: pick(rng, &BranchCond::ALL),
            ra: gen_reg(rng),
            skip: 1 + rng.below(3) as u8,
        },
        _ => Step::Nop,
    }
}

fn gen_steps(rng: &mut SplitMix64, min: usize, max: usize) -> Vec<Step> {
    let n = min + rng.below((max - min) as u64) as usize;
    (0..n).map(|_| gen_step(rng)).collect()
}

/// Builds a terminating program: a prelude seeding registers, the steps,
/// then `halt`. Branches only skip forward, so termination is structural.
fn build_program(steps: &[Step]) -> Program {
    let mut a = Asm::new();
    a.li(Reg::R28, DATA);
    for (i, r) in (1u8..16).enumerate() {
        a.li(Reg::new(r), (i as i64 + 1) * 0x0123_4567 % 0x7FFF_FFFF);
    }
    for (idx, step) in steps.iter().enumerate() {
        match *step {
            Step::Alu { op, ra, rb, lit, rc } => {
                match rb {
                    Some(rb) => a.raw(Inst::op(op, Reg::new(ra), Reg::new(rb), Reg::new(rc))),
                    None => a.raw(Inst::op(op, Reg::new(ra), lit, Reg::new(rc))),
                };
            }
            Step::Unary { op, ra, rc } => {
                a.raw(Inst::Op1 { op, ra: Reg::new(ra), rc: Reg::new(rc) });
            }
            Step::Load { width, rt, disp } => {
                a.raw(Inst::Load { width, rt: Reg::new(rt), base: Reg::R28, disp });
            }
            Step::Store { width, rt, disp } => {
                a.raw(Inst::Store { width, rt: Reg::new(rt), base: Reg::R28, disp });
            }
            Step::Branch { cond, ra, skip } => {
                let skip = (skip as usize).min(steps.len() - idx - 1);
                a.raw(Inst::Branch { cond, ra: Reg::new(ra), disp: skip as i32 });
            }
            Step::Nop => {
                a.nop();
            }
        }
    }
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn final_state(emu: &Emulator) -> Vec<u64> {
    (0..32).map(|r| emu.reg(Reg::new(r))).collect()
}

/// The heart of the test suite: for random programs, the out-of-order
/// timing simulator must visit exactly the functional emulator's
/// architectural states, under every scheduling/RF scheme.
#[test]
fn simulator_matches_emulator() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let steps = gen_steps(&mut rng, 1, 120);
        let program = build_program(&steps);
        let mut emu = Emulator::new(&program);
        emu.run(1_000_000).expect("terminates");
        assert!(emu.halted(), "seed {seed}");
        let want = final_state(&emu);

        for config in [
            SimConfig::four_wide(),
            SimConfig::eight_wide(),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(128) })
                .with_regfile(RegFileScheme::SequentialAccess),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::TagElimination { predictor_entries: 128 }),
        ] {
            let mut sim = Simulator::new(&program, config);
            sim.run();
            assert_eq!(final_state(sim.emulator()), want, "seed {seed}");
            let s = sim.stats();
            assert!(s.cycles > 0, "seed {seed}");
            // Commit count = non-nop instructions executed.
            assert!(s.committed <= emu.executed(), "seed {seed}");
        }
    }
}

/// Stepping random programs cycle by cycle, the scheduler's internal
/// invariants (window sequencing, operand/producer consistency, rename
/// coherence, LSQ accounting) hold at every cycle boundary.
#[test]
fn scheduler_invariants_hold_cycle_by_cycle() {
    for seed in 100..116u64 {
        let mut rng = SplitMix64::new(seed);
        let steps = gen_steps(&mut rng, 1, 80);
        let program = build_program(&steps);
        for config in [
            SimConfig::four_wide(),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None })
                .with_regfile(RegFileScheme::SequentialAccess),
        ] {
            let mut sim = Simulator::new(&program, config);
            let mut guard = 0u32;
            loop {
                sim.step_cycle();
                sim.check_invariants();
                guard += 1;
                assert!(guard < 200_000, "runaway at seed {seed}");
                // Done when everything except decode-eliminated nops
                // has committed.
                if sim.emulator().halted()
                    && sim.stats().committed + sim.stats().format.nops == sim.emulator().executed()
                {
                    break;
                }
            }
        }
    }
}

/// The cycle-accounting books always balance: every issue slot of every
/// cycle is charged to exactly one CPI-stack category, so the stack sums
/// to `cycles x width` exactly — for arbitrary programs, under every
/// scheme the differential fuzzer exercises. On the base machine the
/// half-price penalty categories and counters must all be zero.
#[test]
fn cpi_stack_books_balance_on_fuzzed_programs() {
    use half_price::verify::FUZZ_SCHEMES;
    use half_price::{MachineWidth, Scheme};

    let width = MachineWidth::Four;
    let slots_per_cycle = u64::from(width.base_config().width);
    for seed in 700..900u64 {
        let mut rng = SplitMix64::new(seed);
        let steps = gen_steps(&mut rng, 1, 100);
        let program = build_program(&steps);
        for scheme in FUZZ_SCHEMES {
            let mut sim = Simulator::new(&program, scheme.configure(width));
            sim.enable_counters();
            sim.run();
            let c = sim.counters();
            let s = sim.stats();
            assert_eq!(
                c.cpi.total(),
                s.cycles * slots_per_cycle,
                "seed {seed} under `{}`: CPI stack must sum to cycles x width",
                scheme.key()
            );
            if scheme == Scheme::Base {
                assert_eq!(
                    c.cpi.penalty_slots(),
                    0,
                    "seed {seed}: base machine has no half-price penalties"
                );
                assert_eq!(c.rf_rereads, 0, "seed {seed}: base machine never re-reads");
                assert_eq!(
                    c.slow_bus_occupancy.samples(),
                    0,
                    "seed {seed}: base machine has no slow wakeup bus"
                );
            }
        }
    }
}

#[test]
fn encode_decode_round_trips() {
    for seed in 200..232u64 {
        let mut rng = SplitMix64::new(seed);
        let steps = gen_steps(&mut rng, 1, 80);
        let program = build_program(&steps);
        for inst in program.insts() {
            let word = encode(inst);
            assert_eq!(&decode(word).unwrap(), inst, "seed {seed}");
        }
    }
}

#[test]
fn text_assembler_round_trips() {
    for seed in 300..324u64 {
        let mut rng = SplitMix64::new(seed);
        let steps = gen_steps(&mut rng, 1, 60);
        let program = build_program(&steps);
        let text = disassemble(&program);
        let back = parse_program(&text).expect("disassembly reparses");
        assert_eq!(back.insts(), program.insts(), "seed {seed}");
    }
}

#[test]
fn cache_counters_are_consistent() {
    for seed in 400..412u64 {
        let mut rng = SplitMix64::new(seed);
        let n = 1 + rng.below(299) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(65536)).collect();
        // Probing never disturbs statistics.
        let c =
            Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 32, ways: 2, hit_latency: 1 });
        for &addr in &addrs {
            let _ = c.probe(addr);
        }
        assert_eq!(c.stats().accesses, 0);
        // Drive through a Hierarchy to exercise the access paths.
        let mut h = half_price::cache::Hierarchy::new(half_price::cache::HierarchyConfig::table1());
        for &addr in &addrs {
            let lat = h.data_read(addr);
            assert!(lat >= 2, "at least the DL1 hit latency (seed {seed})");
            assert!(h.dl1_would_hit(addr), "line resident after access (seed {seed})");
        }
        let s = h.stats();
        assert_eq!(s.dl1.accesses, addrs.len() as u64);
        assert!(s.dl1.hits <= s.dl1.accesses);
        assert!(s.l2.accesses <= s.dl1.accesses + s.dl1.misses());
    }
}

#[test]
fn delay_models_are_monotonic() {
    for seed in 500..532u64 {
        let mut rng = SplitMix64::new(seed);
        let entries = 16 + rng.below(496) as u32;
        let width = 2 + rng.below(14) as u32;
        let ports = 4 + rng.below(36) as u32;
        let w = WakeupDelayModel::calibrated_018um();
        assert!(w.delay(entries + 16, width, 2) > w.delay(entries, width, 2));
        assert!(w.delay(entries, width, 2) > w.delay(entries, width, 1));
        assert!(w.delay(entries, width + 1, 2) >= w.delay(entries, width, 2));
        let r = RegFileDelayModel::calibrated_018um();
        assert!(r.access_time(entries + 16, ports) > r.access_time(entries, ports));
        assert!(r.access_time(entries, ports + 1) > r.access_time(entries, ports));
    }
}

#[test]
fn last_arrival_predictor_is_bounded() {
    use half_price::bpred::{LastArrivalPredictor, Side};
    for seed in 600..608u64 {
        let mut rng = SplitMix64::new(seed);
        let mut p = LastArrivalPredictor::new(128);
        let n = rng.below(500);
        for _ in 0..n {
            let pc = rng.below(4096);
            let side = if rng.below(2) == 0 { Side::Left } else { Side::Right };
            p.update(pc * 4, side);
            // Prediction is always one of the two sides and never panics,
            // including for aliased and never-trained PCs.
            let _ = p.predict(pc * 4);
            let _ = p.predict((pc + 1) * 4);
        }
    }
}
