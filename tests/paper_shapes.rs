//! Shape-level regression tests against the paper's headline results,
//! run at Tiny scale so the suite stays fast. The bands are deliberately
//! loose — `EXPERIMENTS.md` records the precise Default-scale numbers —
//! but they pin the *orderings* the paper's conclusions rest on.

use half_price::workloads::{Scale, WORKLOAD_NAMES};
use half_price::{run_matrix, MachineWidth, MatrixResult, Scheme};

fn matrix(schemes: &[Scheme]) -> MatrixResult {
    run_matrix(&WORKLOAD_NAMES, Scale::Tiny, MachineWidth::Four, schemes, |_| {})
        .expect("matrix runs")
}

#[test]
fn combined_half_price_costs_only_a_few_percent() {
    let m = matrix(&[Scheme::Base, Scheme::Combined]);
    let avg = m.average_degradation(Scheme::Combined);
    // Paper: 2.2% average, worst 4.8%. Allow slack for the stand-in
    // workloads, but the conclusion must hold: the cost is "a few percent".
    assert!(avg < 0.05, "average combined degradation {:.1}% too large", avg * 100.0);
    assert!(avg > -0.005, "combined must not beat the base machine");
    let (worst_name, worst) = m.worst_degradation(Scheme::Combined).expect("nonempty");
    assert!(worst < 0.10, "worst-case {worst_name} {:.1}% too large", worst * 100.0);
}

#[test]
fn predictor_beats_static_placement_which_stays_cheap() {
    let m = matrix(&[Scheme::Base, Scheme::SeqWakeupPredictor, Scheme::SeqWakeupStatic]);
    let with_pred = m.average_degradation(Scheme::SeqWakeupPredictor);
    let without = m.average_degradation(Scheme::SeqWakeupStatic);
    // Paper: 0.4% with the predictor, 1.6% without (4-wide).
    assert!(with_pred <= without + 0.002, "{with_pred} vs {without}");
    assert!(with_pred < 0.02, "predictor version loses {:.1}%", with_pred * 100.0);
    assert!(without < 0.04, "static version loses {:.1}%", without * 100.0);
}

#[test]
fn sequential_wakeup_never_misschedules_but_tag_elimination_does() {
    let m = matrix(&[Scheme::Base, Scheme::SeqWakeupPredictor, Scheme::TagElimination]);
    let mut te_misfires = 0;
    for row in &m.rows {
        for r in row {
            match r.scheme {
                Scheme::SeqWakeupPredictor => assert_eq!(
                    r.stats.te_misfires, 0,
                    "{}: sequential wakeup requires no scheduling recovery",
                    r.workload
                ),
                Scheme::TagElimination => te_misfires += r.stats.te_misfires,
                _ => {}
            }
        }
    }
    assert!(te_misfires > 0, "tag elimination must pay verification misfires somewhere");
}

#[test]
fn rf_schemes_keep_most_of_base_performance() {
    let m = matrix(&[
        Scheme::Base,
        Scheme::SeqRegAccess,
        Scheme::HalfPortsCrossbar,
        Scheme::ExtraRfStage,
    ]);
    // Paper: seq RF 1.1% average (4-wide); crossbar close to base.
    assert!(m.average_degradation(Scheme::SeqRegAccess) < 0.03);
    assert!(m.average_degradation(Scheme::HalfPortsCrossbar) < 0.01);
    // The crossbar keeps more IPC than sequential access (it spends
    // hardware on a global arbiter instead).
    assert!(
        m.average_degradation(Scheme::HalfPortsCrossbar)
            <= m.average_degradation(Scheme::SeqRegAccess) + 0.001
    );
}

#[test]
fn characterization_claims_hold_in_aggregate() {
    let m = matrix(&[Scheme::Base]);
    let mut two_pending = 0u64;
    let mut simultaneous = 0u64;
    let mut two_port = 0u64;
    let mut committed = 0u64;
    for row in &m.rows {
        let s = &row[0].stats;
        two_pending += s.wakeup_slack.iter().sum::<u64>();
        simultaneous += s.wakeup_slack[0];
        two_port += s.rf_two_ready + s.rf_non_back_to_back;
        committed += s.committed;
    }
    // Paper: <3% simultaneous, <4% need two ports. The stand-in kernels
    // run denser than compiled SPEC code; hold the aggregate under looser
    // but still "small fraction" bounds.
    // Paper: <3% on SPEC. Hand-written kernels cluster producers more
    // tightly (see EXPERIMENTS.md divergence notes); hold the aggregate
    // under a still-minority bound so regressions are caught.
    let sim_frac = simultaneous as f64 / two_pending as f64;
    assert!(sim_frac < 0.20, "simultaneous fraction {:.1}%", sim_frac * 100.0);
    let port_frac = two_port as f64 / committed as f64;
    assert!(port_frac < 0.10, "two-port fraction {:.1}%", port_frac * 100.0);
}

#[test]
fn last_arrival_predictor_accuracy_is_high_and_grows_with_size() {
    let m = matrix(&[Scheme::Base]);
    let mut acc: std::collections::BTreeMap<usize, (f64, u32)> = Default::default();
    for row in &m.rows {
        for (entries, la) in &row[0].stats.last_arrival {
            if la.correct + la.incorrect < 100 {
                continue; // too few 2-pending pairs to be meaningful
            }
            let e = acc.entry(*entries).or_default();
            e.0 += la.accuracy();
            e.1 += 1;
        }
    }
    let avg: Vec<(usize, f64)> = acc.into_iter().map(|(k, (s, n))| (k, s / f64::from(n))).collect();
    // Paper Figure 7: ~90% accuracy at 1k entries.
    let at_1k = avg.iter().find(|(k, _)| *k == 1024).expect("1k predictor present").1;
    assert!(at_1k > 0.75, "1k-entry accuracy {:.1}%", at_1k * 100.0);
    // Bigger tables never hurt on average.
    let at_128 = avg.iter().find(|(k, _)| *k == 128).expect("128 present").1;
    let at_4k = avg.iter().find(|(k, _)| *k == 4096).expect("4k present").1;
    assert!(at_4k >= at_128 - 0.02, "{at_4k} vs {at_128}");
}
