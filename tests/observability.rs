//! Integration tests for the observability layer (`hpa-obs`):
//!
//! * **differential** — enabling the cycle-accounting counters changes
//!   neither the statistics nor the retire stream, bit for bit, for
//!   corpus reproducers and real workloads under every fuzzed scheme;
//! * **books balance** — the CPI stack of an observed run sums exactly
//!   to `cycles x width`;
//! * **trace round-trip** — Chrome trace-event JSON export reparses to
//!   the same spans, with one span per retired instruction and the
//!   pipeline stages in order (fetch <= dispatch <= wakeup <= select <
//!   exec <= commit).

use half_price::asm::{parse_program, Program};
use half_price::obs::chrome;
use half_price::sim::{CommitHook, CommitRecord, SimStats, Simulator};
use half_price::verify::FUZZ_SCHEMES;
use half_price::workloads::{workload, Scale};
use half_price::{Counters, MachineWidth, Scheme};
use std::cell::RefCell;
use std::rc::Rc;

/// Records the retire stream through shared ownership, so the test can
/// inspect it after the simulator consumes the hook.
#[derive(Clone, Debug)]
struct Recorder(Rc<RefCell<Vec<CommitRecord>>>);

impl CommitHook for Recorder {
    fn on_commit(&mut self, rec: &CommitRecord) -> Result<(), String> {
        self.0.borrow_mut().push(*rec);
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn CommitHook> {
        Box::new(self.clone())
    }
}

/// Runs `program` and returns (stats, retire stream, counters).
fn run_recorded(
    program: &Program,
    scheme: Scheme,
    width: MachineWidth,
    observe: bool,
) -> (SimStats, Vec<CommitRecord>, Counters) {
    let mut sim = Simulator::new(program, scheme.configure(width));
    let stream = Rc::new(RefCell::new(Vec::new()));
    sim.set_commit_hook(Box::new(Recorder(Rc::clone(&stream))));
    if observe {
        sim.enable_counters();
    }
    sim.run();
    let counters = sim.counters().clone();
    let stats = sim.stats().clone();
    drop(sim);
    let stream = Rc::try_unwrap(stream).expect("simulator dropped its hook").into_inner();
    (stats, stream, counters)
}

/// Every `.s` reproducer in the corpus directory, parsed.
fn corpus_programs() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir("tests/corpus")
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "s"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let prog = parse_program(&src).expect("corpus file parses");
        out.push((path.display().to_string(), prog));
    }
    assert!(!out.is_empty(), "corpus must contain reproducers");
    out
}

/// Enabling counters is purely observational: statistics and the retire
/// stream are bit-identical with and without them, and the observed run's
/// books balance, for every corpus reproducer and a real workload under
/// every scheme the differential fuzzer exercises.
#[test]
fn counters_do_not_perturb_stats_or_retire_stream() {
    let mut programs = corpus_programs();
    programs.push(("workload:gcc".into(), workload("gcc", Scale::Tiny).expect("known").program));
    programs.push(("workload:mcf".into(), workload("mcf", Scale::Tiny).expect("known").program));

    let width = MachineWidth::Four;
    let slots_per_cycle = u64::from(width.base_config().width);
    for (name, program) in &programs {
        for scheme in FUZZ_SCHEMES {
            let (plain_stats, plain_stream, plain_counters) =
                run_recorded(program, scheme, width, false);
            let (obs_stats, obs_stream, obs_counters) = run_recorded(program, scheme, width, true);

            assert!(!plain_counters.is_enabled());
            assert_eq!(plain_counters.cpi.total(), 0, "{name}: disabled counters stay zero");
            assert_eq!(
                plain_stats,
                obs_stats,
                "{name} under `{}`: counters must not perturb stats",
                scheme.key()
            );
            assert_eq!(
                plain_stream,
                obs_stream,
                "{name} under `{}`: counters must not perturb the retire stream",
                scheme.key()
            );
            assert_eq!(
                obs_counters.cpi.total(),
                obs_stats.cycles * slots_per_cycle,
                "{name} under `{}`: observed books must balance",
                scheme.key()
            );
        }
    }
}

/// The Chrome trace export round-trips through its own parser, covers
/// every retired instruction exactly once, and orders each instruction's
/// pipeline stages.
#[test]
fn chrome_trace_round_trips_and_nests() {
    let program = workload("gcc", Scale::Tiny).expect("known").program;
    let scheme = Scheme::Combined;
    let width = MachineWidth::Four;
    let config = scheme.configure(width);
    let frontend_depth = config.frontend_depth;

    let mut sim = Simulator::new(&program, config);
    sim.enable_trace(usize::MAX);
    sim.run();
    let spans = sim.pipetrace().expect("trace enabled").chrome_spans(frontend_depth);

    // One span per retired instruction, in retirement order, unique seqs.
    assert_eq!(spans.len() as u64, sim.stats().committed, "one span per retired instruction");
    for pair in spans.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seqs strictly increase in program order");
    }

    // Stage nesting holds for every span.
    for s in &spans {
        assert!(s.fetch <= s.dispatch, "seq {}: fetch <= dispatch", s.seq);
        assert!(s.dispatch <= s.wakeup, "seq {}: dispatch <= wakeup", s.seq);
        assert!(s.wakeup <= s.select, "seq {}: wakeup <= select", s.seq);
        assert!(s.select < s.complete, "seq {}: select < exec completion", s.seq);
        assert!(s.complete <= s.commit, "seq {}: exec <= commit", s.seq);
    }

    // Render -> parse is the identity.
    let json = chrome::render(&spans);
    let back = chrome::parse(&json).expect("exported trace reparses");
    assert_eq!(back, spans, "round trip preserves every span");
}
