//! Lockstep-oracle regression suite over the real-binary RISC-V
//! fixtures.
//!
//! Every checked-in fixture ELF is translated by the `hpa-rv` frontend
//! and driven through the cycle-level simulator with the commit-by-commit
//! lockstep oracle attached, under the base machine and the paper's three
//! headline half-price configurations. The oracle compares every
//! committed instruction against an independent reference emulation, so a
//! pass means the commit stream is bit-identical to the emulator's — and
//! the cross-scheme check below means it is bit-identical *across all
//! four schemes* too.

use half_price::asm::Program;
use half_price::rv::{fixtures, load_elf, translate};
use half_price::verify::{run_differential, run_lockstep, Variant, FUZZ_SCHEMES};
use half_price::workloads::CHECKSUM_REG;
use half_price::{MachineWidth, Scheme};

fn translated(f: &fixtures::Fixture) -> Program {
    let image = load_elf(f.checked_in).expect("checked-in fixture ELF loads");
    translate(&image).expect("checked-in fixture translates")
}

/// Fixture × scheme lockstep matrix: every commit checked against the
/// reference emulator, final architectural state identical across
/// schemes, and the checksum register holding the host model's answer.
#[test]
fn fixtures_hold_lockstep_across_all_schemes() {
    for f in fixtures::all() {
        let program = translated(&f);
        let mut outcomes = Vec::new();
        for scheme in FUZZ_SCHEMES {
            let config = scheme.configure(MachineWidth::Four);
            let out = run_lockstep(&program, config)
                .unwrap_or_else(|d| panic!("{}/{scheme:?}: {d:?}", f.name));
            assert!(out.committed > 0, "{}/{scheme:?} committed nothing", f.name);
            assert_eq!(
                out.state.regs[CHECKSUM_REG.number() as usize],
                f.expected_checksum,
                "{}/{scheme:?}: checksum diverged from host model",
                f.name
            );
            outcomes.push((scheme, out));
        }
        // Timing schemes may take different cycle counts but must retire
        // the same instruction stream into the same final state.
        let (base_scheme, base) = &outcomes[0];
        assert_eq!(*base_scheme, Scheme::Base);
        for (scheme, out) in &outcomes[1..] {
            assert_eq!(out.committed, base.committed, "{}/{scheme:?}", f.name);
            assert_eq!(out.state, base.state, "{}/{scheme:?}", f.name);
        }
    }
}

/// The differential harness (the fuzzer's own cross-compare, with its
/// reduced-resource variants) accepts the translated fixtures too.
#[test]
fn fixtures_pass_the_differential_harness() {
    let variants = [
        Variant { width: MachineWidth::Four, selective_recovery: false, small_pc_table: false },
        Variant { width: MachineWidth::Eight, selective_recovery: true, small_pc_table: true },
    ];
    for f in fixtures::all() {
        let program = translated(&f);
        for variant in variants {
            run_differential(&program, variant)
                .unwrap_or_else(|(s, d)| panic!("{}/{variant:?}/{s:?}: {d:?}", f.name));
        }
    }
}
