//! Snapshot round-trip properties over fuzzed programs.
//!
//! Two layers, both driven by the deterministic workspace generator:
//!
//! * **functional round trip** — snapshot an emulator mid-run, rebuild a
//!   fresh machine from the snapshot, and require bit-identical
//!   architectural state both at the restore point and after running both
//!   machines to completion;
//! * **detailed-window cross-check** — start a detailed simulation window
//!   from the same snapshot and let the lockstep oracle
//!   ([`verify::run_lockstep_window`]) replay every commit on an
//!   independently advanced shadow emulator, so any state the snapshot
//!   failed to carry surfaces as a divergence.
//!
//! Each test sweeps fixed seeds; failures reproduce exactly.

use half_price::emu::{Emulator, RunOutcome};
use half_price::sim::SimConfig;
use half_price::verify::{run_lockstep_window, ArchState, GenProgram};
use half_price::workloads::SplitMix64;

/// Generous bound for tiny generated programs.
const BUDGET: u64 = 10_000_000;

/// Runs a fresh emulator to completion and returns the total dynamic
/// instruction count.
fn total_executed(program: &half_price::asm::Program, seed: u64) -> u64 {
    let mut emu = Emulator::new(program);
    match emu.run(BUDGET) {
        Ok(RunOutcome::Halted { .. }) => emu.executed(),
        other => panic!("seed {seed}: reference emulation did not halt cleanly: {other:?}"),
    }
}

#[test]
fn snapshot_round_trips_architecturally_on_fuzzed_programs() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(0xF00D_0000 + seed);
        let gen = GenProgram::random(&mut rng);
        let program = gen.lower();
        let total = total_executed(&program, seed);

        // Snapshot at a pseudo-random point strictly inside the run.
        let cut = 1 + rng.below(total.max(2) - 1);
        let mut original = Emulator::new(&program);
        original.run(cut).expect("pre-snapshot run is clean");
        let snap = original.snapshot();

        let mut restored = Emulator::from_snapshot(&program, &snap);
        assert_eq!(restored.pc(), original.pc(), "seed {seed}: pc after restore");
        assert_eq!(
            restored.executed(),
            original.executed(),
            "seed {seed}: executed count after restore"
        );
        assert_eq!(
            ArchState::capture(&restored),
            ArchState::capture(&original),
            "seed {seed}: architectural state at the restore point"
        );
        assert_eq!(restored.snapshot(), snap, "seed {seed}: re-snapshot is not a fixed point");

        // Both machines must finish the program identically.
        original.run(BUDGET).expect("original finishes");
        restored.run(BUDGET).expect("restored finishes");
        assert!(original.halted() && restored.halted(), "seed {seed}: both halt");
        assert_eq!(
            ArchState::capture(&restored),
            ArchState::capture(&original),
            "seed {seed}: final architectural state"
        );
        assert_eq!(restored.executed(), original.executed(), "seed {seed}: final executed");
    }
}

#[test]
fn detailed_windows_from_snapshots_pass_the_lockstep_oracle() {
    for seed in 0..12u64 {
        let mut rng = SplitMix64::new(0xBEEF_0000 + seed);
        let gen = GenProgram::random(&mut rng);
        let program = gen.lower();
        let total = total_executed(&program, seed);

        let cut = 1 + rng.below(total.max(2) - 1);
        let mut emu = Emulator::new(&program);
        emu.run(cut).expect("pre-snapshot run is clean");
        let snap = emu.snapshot();

        // A bounded window (warmup + measured detail), as the sampled
        // runner opens them...
        let bounded = SimConfig::four_wide().with_warmup(8).with_max_insts(40);
        run_lockstep_window(&program, bounded, &snap)
            .unwrap_or_else(|d| panic!("seed {seed}: bounded window diverged: {d}"));

        // ...and an unbounded one that must retire the whole remainder.
        let out = run_lockstep_window(&program, SimConfig::eight_wide(), &snap)
            .unwrap_or_else(|d| panic!("seed {seed}: unbounded window diverged: {d}"));
        assert!(out.cycles > 0, "seed {seed}: window simulated no cycles");
    }
}
