//! Chaos and crash-recovery suite: the durability tentpole's proof.
//!
//! Unlike `serve_e2e` (an in-process server), these tests spawn the real
//! `hpa` binary so they can `kill -9` it mid-job and restart it against
//! the same `--journal-dir` — the recovered results must be bit-identical
//! to a direct in-process run. A seeded [`ChaosProxy`] then damages the
//! client↔daemon wire (drop/delay/truncate/corrupt) to prove the SDK's
//! retry loop and the daemon's connection handling never wedge.

use half_price::obs::digest::debug_digest;
use half_price::sdk::Client;
use half_price::serve::proto::{JobRequest, JobStatus};
use half_price::serve::server::{Server, ServerConfig};
use half_price::serve::ChaosProxy;
use half_price::workloads::Scale;
use half_price::{MachineWidth, Scheme};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

/// A spawned `hpa serve` process plus the address it bound.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `hpa serve` on an ephemeral port with the given extra
    /// flags, and parses the bound address off the contract line.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hpa"))
            .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "1"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn hpa serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first =
            lines.next().expect("daemon prints its listening line").expect("readable stdout");
        let addr = first
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("unparsable listening line: {first}"))
            .to_string();
        // Keep draining stdout so the daemon can never block on a full
        // pipe, whatever it prints later.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    /// `kill -9`: SIGKILL, no drain, no cache flush, no journal fsync
    /// beyond what already happened.
    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL the daemon");
        let _ = self.child.wait();
    }

    fn client(&self) -> Client {
        Client::new(self.addr.clone())
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpa-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dir_flags(journal: &Path, cache: &Path) -> Vec<String> {
    vec![
        "--journal-dir".into(),
        journal.display().to_string(),
        "--cache-dir".into(),
        cache.display().to_string(),
    ]
}

#[test]
fn kill9_mid_job_restart_recovers_bit_identical_results() {
    let journal = tmp_dir("kill9-journal");
    let cache = tmp_dir("kill9-cache");
    let flags = dir_flags(&journal, &cache);
    let flag_refs: Vec<&str> = flags.iter().map(String::as_str).collect();

    // Accept two jobs on a 1-worker daemon: one starts, one queues.
    let mut daemon = Daemon::spawn(&flag_refs);
    let client = daemon.client().with_retries(0);
    let gcc = client
        .submit(&JobRequest::workload("gcc", Scale::Tiny, Scheme::Base))
        .expect("submit gcc")
        .job_id;
    let mcf = client
        .submit(&JobRequest::workload("mcf", Scale::Tiny, Scheme::Combined))
        .expect("submit mcf")
        .job_id;

    // The moment both 200s are out, the journal guarantees the jobs —
    // SIGKILL the daemon with one running and one queued.
    daemon.kill9();

    // Restart against the same journal/cache. The replayed jobs must
    // finish with digests bit-identical to direct in-process runs.
    let daemon = Daemon::spawn(&flag_refs);
    let client = daemon.client();
    for (id, name, scheme) in [(gcc, "gcc", Scheme::Base), (mcf, "mcf", Scheme::Combined)] {
        let result = client.wait(id, WAIT).expect("recovered job result");
        assert_eq!(result.status, JobStatus::Done, "job {id} ({name}) after recovery");
        let direct = half_price::run_workload(name, Scale::Tiny, MachineWidth::Four, scheme)
            .expect("direct run");
        assert_eq!(
            result.cells[0].stats_digest(),
            Some(debug_digest(&direct.stats)),
            "job {id} ({name}): recovered digest differs from a direct run"
        );
    }

    // The replay is visible in /health: every journaled job either
    // re-enqueued or rehydrated, and nothing was skipped.
    let health = client.health().expect("health");
    let counter = |key: &str| {
        health.get("counters").and_then(|c| c.get(key)).and_then(|v| v.as_u64()).unwrap_or(999)
    };
    assert_eq!(counter("journal_jobs_requeued") + counter("journal_jobs_rehydrated"), 2);
    assert_eq!(counter("journal_records_skipped"), 0);

    client.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&journal);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn corrupted_journal_is_skipped_with_a_counter_not_a_crash() {
    let journal = tmp_dir("corrupt-journal");
    let cache = tmp_dir("corrupt-cache");
    let flags = dir_flags(&journal, &cache);
    let flag_refs: Vec<&str> = flags.iter().map(String::as_str).collect();

    // Run one job to completion so the journal holds a real record set.
    let daemon = Daemon::spawn(&flag_refs);
    let client = daemon.client();
    let id = client
        .submit(&JobRequest::workload("gcc", Scale::Tiny, Scheme::Base))
        .expect("submit")
        .job_id;
    assert_eq!(client.wait(id, WAIT).expect("result").status, JobStatus::Done);
    client.shutdown().expect("shutdown");

    // Damage the journal: flip a byte mid-file and append plain garbage
    // plus a truncated half-line.
    let path = journal.join("journal.jsonl");
    let mut bytes = std::fs::read(&path).expect("journal exists");
    assert!(!bytes.is_empty(), "clean shutdown left a journal");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    bytes.extend_from_slice(b"not a journal line at all\n");
    bytes.extend_from_slice(b"9999 0x00000000deadbeef {\"type\":\"don");
    std::fs::write(&path, &bytes).expect("rewrite journal");

    // The daemon restarts anyway, counts the damage, and still serves.
    let daemon = Daemon::spawn(&flag_refs);
    let client = daemon.client();
    let health = client.health().expect("health after corrupt replay");
    let skipped = health
        .get("counters")
        .and_then(|c| c.get("journal_records_skipped"))
        .and_then(|v| v.as_u64())
        .expect("replay counter present");
    assert!(skipped >= 1, "the damaged records must be counted, got {skipped}");

    let id = client
        .submit(&JobRequest::workload("mcf", Scale::Tiny, Scheme::Base))
        .expect("submit after corrupt replay")
        .job_id;
    assert_eq!(client.wait(id, WAIT).expect("result").status, JobStatus::Done);

    client.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&journal);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn chaos_proxy_cannot_wedge_the_daemon_and_retries_get_through() {
    // In-process server (no journal needed): the subject here is the
    // wire, not the disk.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let direct = Client::new(addr.to_string());

    let mut through = 0u32;
    for seed in [1u64, 2, 3] {
        let mut proxy = ChaosProxy::start(addr, seed).expect("start proxy");
        let client = Client::new(proxy.addr().to_string())
            .with_io_timeout(Duration::from_secs(2))
            .with_retries(8)
            .with_retry_seed(seed);
        let mut request = JobRequest::workload("gcc", Scale::Tiny, Scheme::Base);
        request.seed = seed; // unique per seed: every run really simulates
        let outcome = client
            .submit(&request)
            .and_then(|submit| client.wait(submit.job_id, Duration::from_secs(60)));
        if outcome.is_ok_and(|r| r.status == JobStatus::Done) {
            through += 1;
        }
        proxy.stop();
        // Whatever the proxy did to its connections, the daemon itself
        // must still answer instantly on the direct path.
        let health = direct.health().expect("daemon must keep serving");
        assert_eq!(health.get("ok").and_then(|v| v.as_bool()), Some(true));
    }
    assert!(
        through >= 2,
        "retry/backoff should carry most seeds through the chaos, got {through}/3"
    );

    direct.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean exit");
}
