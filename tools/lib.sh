# Shared shell helpers for the repo's tooling. Sourced by check.sh and
# unit-tested by tools/test_check_lib.sh; keep everything here POSIX-ish
# and side-effect free.

# Prints the BENCH_<N>.json in `$1` (default: .) with the largest N,
# compared numerically — a lexicographic pick would choose BENCH_9.json
# over BENCH_10.json. Prints nothing when no artifact exists.
newest_bench_json() {
  local dir="${1:-.}" name
  ls "$dir" 2>/dev/null | while read -r name; do
    case "$name" in
      BENCH_*.json)
        n="${name#BENCH_}"
        n="${n%.json}"
        case "$n" in
          '' | *[!0-9]*) ;; # non-numeric suffix: not a perf artifact
          *) printf '%s %s\n' "$n" "$name" ;;
        esac
        ;;
    esac
  done | sort -k1,1n | tail -1 | cut -d' ' -f2-
}
