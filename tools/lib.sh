# Shared shell helpers for the repo's tooling. Sourced by check.sh and
# unit-tested by tools/test_check_lib.sh; keep everything here POSIX-ish
# and side-effect free.

# Prints the BENCH_<N>.json in `$1` (default: .) with the largest N,
# compared numerically — a lexicographic pick would choose BENCH_9.json
# over BENCH_10.json. Prints nothing when no artifact exists.
newest_bench_json() {
  local dir="${1:-.}" name
  ls "$dir" 2>/dev/null | while read -r name; do
    case "$name" in
      BENCH_*.json)
        n="${name#BENCH_}"
        n="${n%.json}"
        case "$n" in
          '' | *[!0-9]*) ;; # non-numeric suffix: not a perf artifact
          *) printf '%s %s\n' "$n" "$name" ;;
        esac
        ;;
    esac
  done | sort -k1,1n | tail -1 | cut -d' ' -f2-
}

# Prints `<phase> <ns_per_cycle>` lines from a perf_smoke JSON (`$1`),
# taking the FIRST occurrence of each `phase_<name>_ns_per_cycle` key —
# v4 artifacts carry two phase blocks (counters off, then on) and the
# counters-off block comes first, so both sides of a comparison read the
# like-for-like numbers. Prints nothing for pre-v4 artifacts.
phase_ns_per_cycle() {
  grep -o '"phase_[a-z]*_ns_per_cycle": [0-9.]*' "$1" 2>/dev/null |
    sed 's/"phase_\([a-z]*\)_ns_per_cycle": \(.*\)/\1 \2/' |
    awk '!seen[$1]++'
}

# Prints the value of the FIRST `"key":<scalar>` pair in the JSON text
# `$1` (key in `$2`): strings are unquoted, numbers/booleans print as-is,
# and a missing key prints nothing. Scalar fields only — values holding
# `,`, `}` or escaped quotes are out of scope (the serve wire format
# keeps its greppable fields — status, cached, digests — scalar).
json_scalar() {
  printf '%s' "$1" |
    grep -o "\"$2\": *\(\"[^\"]*\"\|[^,}]*\)" |
    head -1 |
    sed 's/^"[^"]*": *//; s/ *$//; s/^"//; s/"$//'
}

# Like-for-like per-phase comparison of two perf_smoke JSONs
# (`$1` = fresh, `$2` = baseline). For every phase present in both,
# prints `<phase> <fresh> <baseline> <ratio>` (ratio > 1 means the fresh
# run spends more ns/cycle there), sorted worst-regression first. Prints
# nothing when either side lacks per-phase data (pre-v4 baselines).
phase_regressions() {
  local fresh base
  fresh="$(phase_ns_per_cycle "$1")"
  base="$(phase_ns_per_cycle "$2")"
  [ -n "$fresh" ] && [ -n "$base" ] || return 0
  {
    printf '%s\n' "$fresh" | sed 's/^/f /'
    printf '%s\n' "$base" | sed 's/^/b /'
  } | awk '
    $1 == "f" { f[$2] = $3 }
    $1 == "b" { b[$2] = $3 }
    END {
      for (p in f)
        if (p in b && b[p] > 0)
          printf "%s %.1f %.1f %.3f\n", p, f[p], b[p], f[p] / b[p]
    }' | sort -k4,4rn
}
