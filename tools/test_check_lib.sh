#!/usr/bin/env bash
# Unit tests for tools/lib.sh. Run directly or via check.sh; exits
# non-zero on the first failing assertion.
set -euo pipefail
cd "$(dirname "$0")"
# shellcheck source=lib.sh
. ./lib.sh

fails=0
expect() {
  local what="$1" got="$2" want="$3"
  if [ "$got" != "$want" ]; then
    echo "FAIL $what: got \`$got\`, want \`$want\`" >&2
    fails=$((fails + 1))
  fi
}

tmp="$(mktemp -d /tmp/hpa-check-lib.XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

# Empty directory: no baseline, no error.
expect "empty dir" "$(newest_bench_json "$tmp")" ""

# The numeric maximum wins, not the lexicographic one: BENCH_10 > BENCH_9
# > BENCH_2 even though `sort` would order the names BENCH_10 < BENCH_2.
touch "$tmp/BENCH_1.json" "$tmp/BENCH_2.json" "$tmp/BENCH_9.json" "$tmp/BENCH_10.json"
expect "numeric max" "$(newest_bench_json "$tmp")" "BENCH_10.json"

# Non-perf artifacts that match the glob loosely are ignored.
touch "$tmp/BENCH_notes.json" "$tmp/BENCH_.json" "$tmp/OTHER_99.json"
expect "non-numeric ignored" "$(newest_bench_json "$tmp")" "BENCH_10.json"

# The repo's own artifact sequence: BENCH_5 must beat BENCH_4, so the
# throughput-regression gate compares against the newest baseline.
seq="$(mktemp -d "$tmp/seq.XXXXXX")"
touch "$seq/BENCH_4.json" "$seq/BENCH_5.json"
expect "BENCH_5 beats BENCH_4" "$(newest_bench_json "$seq")" "BENCH_5.json"

# A triple-digit artifact still beats double digits.
touch "$tmp/BENCH_100.json"
expect "three digits" "$(newest_bench_json "$tmp")" "BENCH_100.json"

# phase_ns_per_cycle reads the FIRST occurrence of each phase key — v4
# artifacts list the counters-off block before the counters-on block.
cat > "$tmp/fresh.json" <<'EOF'
{ "phase_select_ns_per_cycle": 150.0, "phase_wakeup_ns_per_cycle": 80.0,
  "phase_select_ns_per_cycle": 199.0, "phase_wakeup_ns_per_cycle": 99.0 }
EOF
expect "first occurrence wins" \
  "$(phase_ns_per_cycle "$tmp/fresh.json" | tr '\n' ';')" \
  "select 150.0;wakeup 80.0;"

# phase_regressions ranks by fresh/baseline ratio, worst first, and only
# compares phases present on both sides.
cat > "$tmp/base.json" <<'EOF'
{ "phase_select_ns_per_cycle": 100.0, "phase_wakeup_ns_per_cycle": 80.0,
  "phase_extra_ns_per_cycle": 5.0 }
EOF
expect "worst regression first" \
  "$(phase_regressions "$tmp/fresh.json" "$tmp/base.json" | awk '{print $1, $4}' | tr '\n' ';')" \
  "select 1.500;wakeup 1.000;"

# json_scalar pulls scalar fields out of serve/submit wire JSON: strings
# unquoted, numbers and booleans verbatim, first occurrence winning, and
# nothing for absent keys.
wire='{"job_id":7,"status":"done","cached":true,"cells":[{"scheme":"base","cached":false,"result":{"stats_digest":"0x432788c91a33cfe9","ipc":0.866}}]}'
expect "json string" "$(json_scalar "$wire" status)" "done"
expect "json bool (first wins)" "$(json_scalar "$wire" cached)" "true"
expect "json number" "$(json_scalar "$wire" job_id)" "7"
expect "json hex string" "$(json_scalar "$wire" stats_digest)" "0x432788c91a33cfe9"
expect "json missing key" "$(json_scalar "$wire" nonesuch)" ""
expect "json spaced colon" "$(json_scalar '{ "a": 3.5 }' a)" "3.5"

# A pre-v4 baseline (no phase keys) yields no comparison rather than junk.
cat > "$tmp/old.json" <<'EOF'
{ "aggregate_mcycles_per_sec": 4.01 }
EOF
expect "pre-v4 baseline" "$(phase_regressions "$tmp/fresh.json" "$tmp/old.json")" ""

if [ "$fails" -gt 0 ]; then
  echo "test_check_lib: $fails failure(s)" >&2
  exit 1
fi
echo "test_check_lib: all assertions passed"
