#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, the full offline test suite and a
# tiny perf smoke run. Everything here works with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== perf smoke (tiny) =="
out="$(mktemp /tmp/hpa-perf-smoke.XXXXXX.json)"
cargo run --release -q -p hpa-bench --bin perf_smoke -- --scale tiny --out "$out"
echo "perf smoke wrote $out"

echo "== check.sh: all gates passed =="
