#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, the full offline test suite and a
# tiny perf smoke run. Everything here works with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."
. tools/lib.sh

echo "== shell helper tests =="
tools/test_check_lib.sh

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo test (sim, strict-invariants) =="
# The fuzzer always runs with runtime invariants on; this pass makes sure
# the compile-time feature gate builds and the sim suite holds under it.
cargo test -q -p hpa-sim --features strict-invariants

echo "== fuzz smoke (fixed seed) =="
# Differential fuzzing gate: 200 random programs, each run in lockstep with
# the shadow emulator under base + three half-price schemes. Any divergence
# exits non-zero and leaves a shrunk reproducer in tests/corpus/.
cargo run --release -q --bin hpa -- fuzz --iters 200 --seed 42

echo "== sampled fuzz smoke (fixed seed) =="
# The tiered variant of the same gate: every program is snapshotted at its
# midpoint, a detailed window restored from the snapshot is lockstep-
# checked against an independently advanced shadow, and a full sampled run
# must reproduce the reference architectural state under every scheme.
cargo run --release -q --bin hpa -- fuzz --iters 200 --seed 42 --sampled

echo "== fault-injection mini campaign (fixed seed) =="
# Resilience gate: 140 injected runs (5 seeded programs x 4 schemes x 7
# fault classes) against the lockstep oracle. Exits non-zero on any SDC
# (code 4, reproducer shrunk into tests/corpus/) or aborted cell (code 3),
# so zero silent corruption and zero unhandled panics are enforced here.
resilience="$(mktemp /tmp/hpa-resilience.XXXXXX.json)"
cargo run --release -q --bin hpa -- faults --campaign mini --seed 42 --out "$resilience"
echo "resilience report written to $resilience"

echo "== corpus replay =="
# Replay every checked-in reproducer through the full differential check.
cargo run --release -q --bin hpa -- verify tests/corpus

echo "== real-binary fixture gate (emu vs sim) =="
# The hpa-rv frontend end to end through real processes: a checked-in
# RISC-V fixture ELF must (a) run to completion in the functional
# emulator with the host model's checksum in the guest a1 register,
# (b) hold commit-by-commit lockstep against that same emulator under
# all four schemes, and (c) produce a detailed-sim stats digest from
# the on-disk ELF that is bit-identical to the registry's `rv-sieve`
# workload — the two decode paths must yield the same program.
rv_elf="crates/rv/fixtures/sieve.elf"
rv_run="$(cargo run --release -q --bin hpa -- run "$rv_elf")"
printf '%s\n' "$rv_run" | grep -q '^Halted' || {
  echo "ERROR: $rv_elf did not halt in the emulator:" >&2
  printf '%s\n' "$rv_run" >&2
  exit 1
}
rv_sum="$(printf '%s\n' "$rv_run" | awk '$1 == "r10" {print $3}')"
if [ "$rv_sum" != "0x1295f" ]; then  # sum of the primes below 1000
  echo "ERROR: $rv_elf emulator checksum ($rv_sum) != host model (0x1295f)" >&2
  exit 1
fi
cargo run --release -q --bin hpa -- verify "$rv_elf" | grep -q 'agree in lockstep' || {
  echo "ERROR: $rv_elf diverged under the lockstep oracle" >&2
  exit 1
}
rv_elf_digest="$(cargo run --release -q --bin hpa -- sim "$rv_elf" |
  awk '/^stats digest/ {print $3}')"
rv_reg_digest="$(cargo run --release -q --bin hpa -- bench rv-sieve |
  awk '/^stats digest/ {print $3}')"
if [ -z "$rv_elf_digest" ] || [ "$rv_elf_digest" != "$rv_reg_digest" ]; then
  echo "ERROR: ELF sim digest ($rv_elf_digest) != rv-sieve workload digest ($rv_reg_digest)" >&2
  exit 1
fi
echo "hpa-rv: emu checksum $rv_sum, lockstep clean, sim digest $rv_elf_digest matches registry"

echo "== cycle-accounting smoke =="
# The observability layer end to end: run one benchmark with counters on
# and check the books balance — the JSON must report the CPI stack summing
# to cycles x width (the integration suites prove this exhaustively; this
# gate proves the CLI path stays wired).
counters_json="$(cargo run --release -q --bin hpa -- counters gcc --scale tiny --scheme combined --json)"
total="$(printf '%s\n' "$counters_json" | grep -o '"cpi_total_slots": [0-9]*' | grep -o '[0-9]*$')"
if [ -z "$total" ] || [ "$total" -eq 0 ]; then
  echo "ERROR: hpa counters --json reported no attributed issue slots" >&2
  exit 1
fi
echo "hpa counters --json: $total issue slots attributed"

echo "== serve smoke =="
# Simulation-as-a-service gate, end to end through real processes: start
# the daemon on an ephemeral port, submit the same tiny workload twice,
# and require (a) the resubmission is served from the content-addressed
# result cache, (b) both payloads carry the exact stats digest a direct
# in-process run prints, and (c) `serve --stop` drains the daemon to a
# clean exit 0.
serve_log="$(mktemp /tmp/hpa-serve-smoke.XXXXXX.log)"
serve_cache="$(mktemp -d /tmp/hpa-serve-smoke-cache.XXXXXX)"
cargo run --release -q --bin hpa -- serve --addr 127.0.0.1:0 --cache-dir "$serve_cache" \
  > "$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q 'listening on' "$serve_log" 2>/dev/null && break
  sleep 0.1
done
serve_addr="$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$serve_log" | head -1)"
if [ -z "$serve_addr" ]; then
  echo "ERROR: hpa serve did not come up:" >&2
  cat "$serve_log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
first="$(cargo run --release -q --bin hpa -- submit gcc --scale tiny --addr "$serve_addr" --json)"
second="$(cargo run --release -q --bin hpa -- submit gcc --scale tiny --addr "$serve_addr" --json)"
if [ "$(json_scalar "$first" cached)" != "false" ]; then
  echo "ERROR: first submission reported a cache hit on an empty cache: $first" >&2
  exit 1
fi
if [ "$(json_scalar "$second" cached)" != "true" ]; then
  echo "ERROR: resubmission was not served from the result cache: $second" >&2
  exit 1
fi
first_digest="$(json_scalar "$first" stats_digest)"
second_digest="$(json_scalar "$second" stats_digest)"
direct_digest="$(cargo run --release -q --bin hpa -- bench gcc --scale tiny |
  awk '/^stats digest/ {print $3}')"
if [ -z "$first_digest" ] || [ "$first_digest" != "$direct_digest" ] ||
   [ "$second_digest" != "$direct_digest" ]; then
  echo "ERROR: daemon stats digests ($first_digest, $second_digest) != direct run ($direct_digest)" >&2
  exit 1
fi
# Raw-binary jobs through the same daemon: submit a checked-in fixture
# ELF twice and require the resubmission to be a bit-identical cache
# hit — the content-addressed key is the *translated* program, so the
# same bytes must land on the same entry — with both payloads carrying
# the exact digest the direct-ELF simulation printed above.
bin_first="$(cargo run --release -q --bin hpa -- submit "$rv_elf" --addr "$serve_addr" --json)"
bin_second="$(cargo run --release -q --bin hpa -- submit "$rv_elf" --addr "$serve_addr" --json)"
if [ "$(json_scalar "$bin_first" cached)" != "false" ]; then
  echo "ERROR: first binary submission reported a cache hit on an empty cache: $bin_first" >&2
  exit 1
fi
if [ "$(json_scalar "$bin_second" cached)" != "true" ]; then
  echo "ERROR: binary resubmission was not served from the result cache: $bin_second" >&2
  exit 1
fi
bin_first_digest="$(json_scalar "$bin_first" stats_digest)"
bin_second_digest="$(json_scalar "$bin_second" stats_digest)"
if [ -z "$bin_first_digest" ] || [ "$bin_first_digest" != "$rv_elf_digest" ] ||
   [ "$bin_second_digest" != "$rv_elf_digest" ]; then
  echo "ERROR: binary-job digests ($bin_first_digest, $bin_second_digest) != direct ELF run ($rv_elf_digest)" >&2
  exit 1
fi
cargo run --release -q --bin hpa -- serve --stop --addr "$serve_addr"
wait "$serve_pid"
rm -rf "$serve_cache"
echo "hpa serve: cache hit on resubmission, digest $direct_digest matches direct run, clean shutdown"
echo "hpa serve: binary job cache hit on resubmission, digest $bin_first_digest matches direct ELF run"

echo "== serve crash-recovery gate =="
# Durability gate, end to end through real processes and a real SIGKILL:
# start a journaled daemon, submit a job without waiting, kill -9 the
# daemon, restart it on the same journal, and require the replayed job to
# finish with the exact digest a direct in-process run prints. This is
# the contract the write-ahead journal exists for.
recover_log="$(mktemp /tmp/hpa-serve-recover.XXXXXX.log)"
recover_cache="$(mktemp -d /tmp/hpa-serve-recover-cache.XXXXXX)"
recover_journal="$(mktemp -d /tmp/hpa-serve-recover-journal.XXXXXX)"
cargo run --release -q --bin hpa -- serve --addr 127.0.0.1:0 --jobs 1 \
  --journal-dir "$recover_journal" --cache-dir "$recover_cache" \
  > "$recover_log" 2>&1 &
recover_pid=$!
for _ in $(seq 1 100); do
  grep -q 'listening on' "$recover_log" 2>/dev/null && break
  sleep 0.1
done
recover_addr="$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$recover_log" | head -1)"
if [ -z "$recover_addr" ]; then
  echo "ERROR: journaled hpa serve did not come up:" >&2
  cat "$recover_log" >&2
  kill "$recover_pid" 2>/dev/null || true
  exit 1
fi
receipt="$(cargo run --release -q --bin hpa -- submit mcf --scale tiny \
  --addr "$recover_addr" --no-wait --json)"
recover_job="$(json_scalar "$receipt" job_id)"
if [ -z "$recover_job" ]; then
  echo "ERROR: --no-wait submit returned no job_id: $receipt" >&2
  exit 1
fi
# The 200 is out, so the journal holds the job: SIGKILL, no grace.
kill -9 "$recover_pid"
wait "$recover_pid" 2>/dev/null || true
cargo run --release -q --bin hpa -- serve --addr 127.0.0.1:0 --jobs 1 \
  --journal-dir "$recover_journal" --cache-dir "$recover_cache" \
  > "$recover_log" 2>&1 &
recover_pid=$!
for _ in $(seq 1 100); do
  grep -q 'listening on' "$recover_log" 2>/dev/null && break
  sleep 0.1
done
recover_addr="$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$recover_log" | head -1)"
recovered="$(cargo run --release -q --bin hpa -- job "$recover_job" \
  --addr "$recover_addr" --wait-secs 180 --json)"
recovered_digest="$(json_scalar "$recovered" stats_digest)"
mcf_digest="$(cargo run --release -q --bin hpa -- bench mcf --scale tiny |
  awk '/^stats digest/ {print $3}')"
if [ -z "$recovered_digest" ] || [ "$recovered_digest" != "$mcf_digest" ]; then
  echo "ERROR: recovered job digest ($recovered_digest) != direct run ($mcf_digest)" >&2
  cat "$recover_log" >&2
  kill "$recover_pid" 2>/dev/null || true
  exit 1
fi
cargo run --release -q --bin hpa -- serve --stop --addr "$recover_addr"
wait "$recover_pid"
rm -rf "$recover_cache" "$recover_journal"
echo "hpa serve: kill -9 mid-job, journal replay, digest $recovered_digest matches direct run"

echo "== chaos smoke (fixed seeds) =="
# Fault-injection proxy between SDK and daemon: seeded drops, delays,
# truncations and bit flips on the wire. The retry loop must carry the
# submissions through, and the daemon must never wedge.
cargo test -q --release --test serve_chaos chaos_proxy

echo "== sampled-accuracy check (non-fatal) =="
# SMARTS-style sampling vs full detailed simulation on two workloads at
# the default scale, fixed seed. Non-fatal: sampling only warms branch
# tables during fast-forward (caches start cold in each window), so
# cache-sensitive workloads legitimately drift; a >10% error on these two
# stable ones usually means the estimator or snapshot path regressed.
sampled_units="2000:10000:88000"
for b in gcc perl; do
  full="$(cargo run --release -q --bin hpa -- bench "$b" --scale default | awk '/^IPC/ {print $2}')"
  sampled="$(cargo run --release -q --bin hpa -- bench "$b" --scale default \
    --sampled "$sampled_units" --seed 42 | awk '/^mean IPC/ {print $3}')"
  echo "$b (default): full IPC $full, sampled mean IPC $sampled"
  if awk -v f="$full" -v s="$sampled" \
    'BEGIN { d = s - f; if (d < 0) d = -d; exit !(f > 0 && d > 0.10 * f) }'; then
    echo "WARNING: sampled IPC off by >10% vs full detailed on $b ($sampled vs $full)" >&2
  fi
done

echo "== perf smoke (tiny) =="
out="$(mktemp /tmp/hpa-perf-smoke.XXXXXX.json)"
cargo run --release -q -p hpa-bench --bin perf_smoke -- --scale tiny --out "$out"
echo "perf smoke wrote $out"

echo "== throughput regression check =="
# Compare the fresh tiny-scale aggregate against the newest committed
# BENCH_*.json, picked by numeric suffix (tools/lib.sh — a filename sort
# would choose BENCH_9 over BENCH_10). Non-fatal: wall-clock throughput is
# machine-dependent, so a drop only warns — but a >10% drop on the same
# machine usually means a real cycle-loop regression worth investigating.
baseline_file="$(newest_bench_json .)"
if [ -n "$baseline_file" ]; then
  fresh="$(grep -o '"aggregate_mcycles_per_sec": [0-9.]*' "$out" | head -1 | grep -o '[0-9.]*$')"
  base="$(grep -o '"aggregate_mcycles_per_sec": [0-9.]*' "$baseline_file" | head -1 | grep -o '[0-9.]*$')"
  echo "fresh aggregate: $fresh Mcycles/s; $baseline_file: $base Mcycles/s"
  if awk -v f="$fresh" -v b="$base" 'BEGIN { exit !(b > 0 && f < 0.9 * b) }'; then
    echo "WARNING: aggregate throughput dropped >10% vs $baseline_file ($fresh < 0.9 * $base)" >&2
    # Attribute the drop: like-for-like (counters-off) per-phase ns/cycle,
    # worst regression first, so the log says *which* pipeline phase got
    # slower — not just that something did. Pre-v4 baselines carry no
    # phase timings; say so instead of comparing nothing.
    phases="$(phase_regressions "$out" "$baseline_file")"
    if [ -n "$phases" ]; then
      echo "per-phase ns/cycle (fresh vs $baseline_file, worst first):" >&2
      printf '%s\n' "$phases" |
        awk '{ printf "  %-8s %8.1f vs %8.1f  (x%.3f)\n", $1, $2, $3, $4 }' >&2
      worst="$(printf '%s\n' "$phases" | head -1)"
      echo "largest regression: $(printf '%s' "$worst" | cut -d' ' -f1) phase" >&2
    else
      echo "baseline $baseline_file predates per-phase timings (pre-v4); cannot attribute the drop" >&2
    fi
  fi
else
  echo "no committed BENCH_*.json baseline; skipping"
fi

echo "== cycle-loop profile (non-fatal) =="
# Function-level CPU profile of a tiny perf_smoke run via gprofng, so a
# throughput warning above comes with "which function" attribution in the
# same log. Skips cleanly when the host has no profiler (or refuses the
# collector); never fails the gate.
tools/profile.sh --scale tiny --top 12 || \
  echo "WARNING: tools/profile.sh failed (non-fatal)" >&2

echo "== coverage report (non-fatal) =="
# Line-coverage summary via cargo-llvm-cov when the host has it; purely
# informational — the container images don't ship it, so absence skips.
if command -v cargo-llvm-cov >/dev/null 2>&1; then
  cargo llvm-cov --workspace --summary-only -q || \
    echo "WARNING: cargo llvm-cov failed (non-fatal)" >&2
else
  echo "cargo-llvm-cov not installed; skipping"
fi

echo "== check.sh: all gates passed =="
