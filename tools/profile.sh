#!/usr/bin/env bash
# Profiling harness for the cycle loop: collects a CPU profile of a
# perf_smoke run and prints the hottest functions, so "which phase got
# slower" (check.sh's per-phase comparison) can be followed up with
# "which function inside that phase".
#
# Uses gprofng (binutils) — the containers this repo grows in ship it,
# while `perf` is typically absent and the kernel's perf_event interface
# is often locked down. Skips cleanly (exit 0, a message on stderr) when
# no profiler is available, so check.sh can call it non-fatally.
#
# Usage: tools/profile.sh [--scale tiny|default|large] [--top N] [--keep]
#   --scale  workload scale passed to perf_smoke (default: tiny)
#   --top    number of hottest functions to print (default: 15)
#   --keep   keep the experiment directory and print its path
set -euo pipefail
cd "$(dirname "$0")/.."

scale=tiny
top=15
keep=0
while [ $# -gt 0 ]; do
  case "$1" in
    --scale) scale="${2:?--scale needs a value}"; shift 2 ;;
    --top) top="${2:?--top needs a value}"; shift 2 ;;
    --keep) keep=1; shift ;;
    *) echo "usage: tools/profile.sh [--scale S] [--top N] [--keep]" >&2; exit 2 ;;
  esac
done

if ! command -v gprofng >/dev/null 2>&1; then
  echo "profile.sh: gprofng not found; skipping (install binutils-gprofng to enable)" >&2
  exit 0
fi

# The release profile carries line tables (debug = 1 in Cargo.toml), so
# the collected samples attribute to source lines, not just symbols.
echo "== building perf_smoke (release) =="
cargo build --release -q -p hpa-bench --bin perf_smoke

expdir="$(mktemp -d /tmp/hpa-profile.XXXXXX)"
exp="$expdir/perf_smoke.er"
out="$expdir/perf_smoke.json"
cleanup() { [ "$keep" -eq 1 ] || rm -rf "$expdir"; }
trap cleanup EXIT

echo "== collecting profile (scale=$scale) =="
if ! gprofng collect app -o "$exp" \
  target/release/perf_smoke --scale "$scale" --out "$out" >/dev/null 2>&1; then
  # Some hardened hosts refuse the collector's ptrace/LD_PRELOAD hooks;
  # that is an environment limitation, not a repo failure.
  echo "profile.sh: gprofng collect failed on this host; skipping" >&2
  exit 0
fi

echo "== hottest functions (exclusive CPU, top $top) =="
gprofng display text -metrics e.totalcpu -sort e.totalcpu -functions "$exp" |
  awk 'NR > 5 && $1 + 0 > 0 { print } NR > 5 + '"$top"' { exit }'

if [ "$keep" -eq 1 ]; then
  echo "experiment kept at: $exp"
  echo "drill down with: gprofng display text -lines $exp"
  echo "             or: gprofng display text -source <function> $exp"
fi
